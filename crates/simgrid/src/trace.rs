//! Step-function resource traces.
//!
//! Every dynamic quantity in the simulated environment — CPU availability,
//! network availability — is a [`Trace`]: a piecewise-constant function of
//! time at fixed resolution. Traces support the two queries the rest of the
//! system needs: *sampling* (what the NWS sensors do every five seconds)
//! and *work integration* (how long does a computation of `W` dedicated
//! seconds take if it starts at `t0` and proceeds at the traced
//! availability).
//!
//! Both queries are answered in constant / logarithmic time from a
//! cumulative-integral (prefix-sum) array built once at construction:
//! [`Trace::integral`] is two O(1) interpolated lookups and
//! [`Trace::time_to_complete`] is a binary search over the prefix array.
//! The historical step-walking implementations are kept as
//! [`Trace::integral_reference`] and [`Trace::time_to_complete_reference`]
//! — O(steps) but independently simple — and the unit/property tests pin
//! the two to ≤ 1e-9 agreement.

use serde::{Deserialize, Serialize};

/// Availability at or below this floor is clamped up during work
/// integration so a zero-availability stretch cannot hang the simulation.
/// Crate-visible so the columnar [`crate::store::TraceStore`] can assert
/// its templates stay strictly above it (which lets the store serve work
/// integration from a single raw prefix array).
pub(crate) const AVAIL_FLOOR: f64 = 1e-6;

/// A piecewise-constant time series starting at `t0` with step `dt`.
///
/// Beyond the last sample the trace holds its final value; before `t0` it
/// holds its first — simulated experiments always run inside the generated
/// horizon, but clamping keeps boundary arithmetic total.
#[derive(Debug, Clone)]
pub struct Trace {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
    /// `prefix[k]` = integral of the trace over the first `k` whole steps
    /// (Kahan-compensated, so 3600-step prefixes stay exact to ~1 ulp).
    prefix: Vec<f64>,
    /// Same, with each value clamped up to [`AVAIL_FLOOR`] — the work
    /// integration curve, strictly increasing and therefore searchable.
    prefix_floored: Vec<f64>,
}

/// Builds the Kahan-compensated cumulative integral of `values * dt`,
/// clamping each value to at least `floor` (pass `f64::NEG_INFINITY` for
/// no clamping). `out[k]` covers the first `k` whole steps; `out.len() ==
/// values.len() + 1`.
pub(crate) fn cumulative_prefix(dt: f64, values: &[f64], floor: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len() + 1);
    out.push(0.0);
    let mut sum = 0.0;
    let mut comp = 0.0;
    for &v in values {
        let y = v.max(floor) * dt - comp;
        let t = sum + y;
        comp = (t - sum) - y;
        sum = t;
        out.push(sum);
    }
    out
}

impl Trace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `values` is empty, or any value is non-finite.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0, "trace step must be positive");
        assert!(!values.is_empty(), "trace needs at least one sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "trace values must be finite"
        );
        let prefix = cumulative_prefix(dt, &values, f64::NEG_INFINITY);
        let prefix_floored = cumulative_prefix(dt, &values, AVAIL_FLOOR);
        Self {
            t0,
            dt,
            values,
            prefix,
            prefix_floored,
        }
    }

    /// A constant trace (dedicated resources).
    pub fn constant(t0: f64, dt: f64, value: f64, steps: usize) -> Self {
        Self::new(t0, dt, vec![value; steps.max(1)])
    }

    /// Builds a trace by evaluating `f` at each step start.
    pub fn from_fn(t0: f64, dt: f64, steps: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        assert!(steps > 0);
        Self::new(t0, dt, (0..steps).map(|i| f(t0 + i as f64 * dt)).collect())
    }

    /// Start time.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Step width in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// End of the generated horizon.
    pub fn t_end(&self) -> f64 {
        self.t0 + self.dt * self.values.len() as f64
    }

    /// Raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the trace, returning its samples without copying — the
    /// chunked generators hand freshly generated blocks to the columnar
    /// store this way.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The value at time `t` (clamped to the horizon).
    pub fn at(&self, t: f64) -> f64 {
        if t <= self.t0 {
            return self.values[0];
        }
        let idx = ((t - self.t0) / self.dt) as usize;
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Mean value over `[a, b]`, integrating the step function exactly.
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    pub fn mean_over(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        if b == a {
            return self.at(a);
        }
        self.integral(a, b) / (b - a)
    }

    /// The step index whose segment contains `x`, clamped to the last
    /// step (which extends to +infinity). Callers guarantee `x > t0`.
    #[inline]
    fn step_of(&self, x: f64) -> usize {
        (((x - self.t0) / self.dt) as usize).min(self.values.len() - 1)
    }

    /// The cumulative integral `F(x) = ∫ trace` from `t0` to `x`, in O(1)
    /// via the prefix array: whole steps are a lookup, the partial step an
    /// interpolation. `x` before `t0` extends the first value backwards
    /// (negative area), `x` beyond the horizon extends the last forwards.
    #[inline]
    fn cumulative(&self, x: f64) -> f64 {
        if x <= self.t0 {
            return self.values[0] * (x - self.t0);
        }
        let k = self.step_of(x);
        self.prefix[k] + self.values[k] * (x - (self.t0 + k as f64 * self.dt))
    }

    /// [`Self::cumulative`] over the floor-clamped availability curve.
    #[inline]
    fn cumulative_floored(&self, x: f64) -> f64 {
        if x <= self.t0 {
            return self.values[0].max(AVAIL_FLOOR) * (x - self.t0);
        }
        let k = self.step_of(x);
        self.prefix_floored[k]
            + self.values[k].max(AVAIL_FLOOR) * (x - (self.t0 + k as f64 * self.dt))
    }

    /// Integral of the trace over `[a, b]`: the difference of two O(1)
    /// cumulative lookups.
    ///
    /// # Panics
    ///
    /// Panics if `b < a`.
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        self.cumulative(b) - self.cumulative(a)
    }

    /// The historical step-walking `integral`, kept as the independently
    /// simple reference the prefix path is validated against (and the
    /// baseline the `trace_integration` bench compares with).
    ///
    /// An integer step cursor guarantees termination even when interval
    /// endpoints land exactly on step boundaries (a float-recomputation
    /// loop can stall there).
    pub fn integral_reference(&self, a: f64, b: f64) -> f64 {
        assert!(b >= a, "inverted interval [{a}, {b}]");
        let mut acc = 0.0;
        let mut t = a;
        // Stretch before the horizon: the first value holds.
        if t < self.t0 {
            let seg_end = self.t0.min(b);
            acc += self.values[0] * (seg_end - t);
            t = seg_end;
        }
        if t >= b {
            return acc;
        }
        let last = self.values.len() - 1;
        let mut k = (((t - self.t0) / self.dt) as usize).min(last);
        loop {
            if k >= last {
                // Final value holds to the end of the interval.
                acc += self.values[last] * (b - t).max(0.0);
                return acc;
            }
            let step_end = self.t0 + (k as f64 + 1.0) * self.dt;
            if step_end >= b {
                acc += self.values[k] * (b - t).max(0.0);
                return acc;
            }
            acc += self.values[k] * (step_end - t).max(0.0);
            t = step_end;
            k += 1;
        }
    }

    /// How long work of `dedicated_work` seconds takes when started at
    /// `t0_work`, proceeding at the traced availability: the smallest `d`
    /// with `integral(t0_work, t0_work + d) == dedicated_work`.
    ///
    /// Availability at or below the `1e-6` floor is clamped up so a
    /// zero-availability stretch cannot hang the simulation forever.
    ///
    /// Implemented as a binary search (`partition_point`) over the
    /// floored prefix array for the step where the cumulative work curve
    /// crosses the target, then one division to interpolate inside it —
    /// O(log steps) instead of the O(steps) walk of
    /// [`Self::time_to_complete_reference`].
    pub fn time_to_complete(&self, t0_work: f64, dedicated_work: f64) -> f64 {
        assert!(
            dedicated_work >= 0.0,
            "work must be non-negative: {dedicated_work}"
        );
        // tidy:allow(PP004): exact zero-work shortcut, no tolerance wanted
        if dedicated_work == 0.0 {
            return 0.0;
        }
        // Work finishes at the x where the cumulative floored curve G
        // reaches G(t0_work) + W. G is strictly increasing (values are
        // clamped to a positive floor), so x is unique.
        let target = self.cumulative_floored(t0_work) + dedicated_work;
        if target <= 0.0 {
            // Finishes before the trace even starts: constant first value.
            let v = self.values[0].max(AVAIL_FLOOR);
            return self.t0 + target / v - t0_work;
        }
        let last = self.values.len() - 1;
        // First prefix entry >= target, over the `last + 1` step starts;
        // the crossing lies in the step before it (the last step extends
        // to +infinity, so a target beyond the horizon clamps there).
        let i = self.prefix_floored[..=last].partition_point(|&p| p < target);
        let k = i.saturating_sub(1).min(last);
        let v = self.values[k].max(AVAIL_FLOOR);
        let x = self.t0 + k as f64 * self.dt + (target - self.prefix_floored[k]) / v;
        x - t0_work
    }

    /// The historical step-walking `time_to_complete`, kept as the
    /// reference implementation the binary-search path is validated
    /// against.
    pub fn time_to_complete_reference(&self, t0_work: f64, dedicated_work: f64) -> f64 {
        assert!(
            dedicated_work >= 0.0,
            "work must be non-negative: {dedicated_work}"
        );
        // tidy:allow(PP004): exact zero-work shortcut, no tolerance wanted
        if dedicated_work == 0.0 {
            return 0.0;
        }
        let mut remaining = dedicated_work;
        let mut t = t0_work;
        // Stretch before the horizon: the first value holds.
        if t < self.t0 {
            let v = self.values[0].max(AVAIL_FLOOR);
            let capacity = v * (self.t0 - t);
            if capacity >= remaining {
                return remaining / v;
            }
            remaining -= capacity;
            t = self.t0;
        }
        // Integer step cursor: strictly increasing, so the loop always
        // terminates (a float-recomputed index can stall on boundaries).
        let last = self.values.len() - 1;
        let mut k = (((t - self.t0) / self.dt) as usize).min(last);
        loop {
            let v = self.values[k].max(AVAIL_FLOOR);
            if k >= last {
                // Final value holds forever.
                return t + remaining / v - t0_work;
            }
            let step_end = self.t0 + (k as f64 + 1.0) * self.dt;
            let capacity = v * (step_end - t).max(0.0);
            if capacity >= remaining {
                return t + remaining / v - t0_work;
            }
            remaining -= capacity;
            t = step_end;
            k += 1;
        }
    }

    /// Samples the trace every `interval` seconds over `[a, b)` — the NWS
    /// sensor cadence. Returns `(t, value)` pairs.
    pub fn sample_every(&self, a: f64, b: f64, interval: f64) -> Vec<(f64, f64)> {
        assert!(interval > 0.0 && b >= a);
        let mut out = Vec::new();
        let mut t = a;
        while t < b {
            out.push((t, self.at(t)));
            t += interval;
        }
        out
    }

    /// The sub-trace covering `[a, b)`, clamped to the horizon. The
    /// result's `t0` is the start of the step containing `a`.
    ///
    /// # Panics
    ///
    /// Panics if `b <= a`.
    pub fn slice(&self, a: f64, b: f64) -> Trace {
        assert!(b > a, "empty slice [{a}, {b})");
        let last = self.values.len() - 1;
        let k0 = if a <= self.t0 {
            0
        } else {
            (((a - self.t0) / self.dt) as usize).min(last)
        };
        let k1 = if b <= self.t0 {
            1
        } else {
            ((((b - self.t0) / self.dt).ceil()) as usize).clamp(k0 + 1, last + 1)
        };
        Trace::new(
            self.t0 + k0 as f64 * self.dt,
            self.dt,
            self.values[k0..k1].to_vec(),
        )
    }

    /// Resamples to a coarser resolution: each output step of `factor`
    /// input steps holds their mean — how an archival tool thins a long
    /// trace without biasing work integration.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downsample(&self, factor: usize) -> Trace {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        Trace::new(self.t0, self.dt * factor as f64, values)
    }

    /// The minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The maximum sample value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// Two traces are equal when their defining data agree — the prefix
/// arrays are derived and excluded from the comparison.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.t0 == other.t0 && self.dt == other.dt && self.values == other.values
    }
}

/// Serializes only the defining fields (`t0`, `dt`, `values`) — the same
/// shape the former derive produced — so stored traces stay readable and
/// the prefix arrays never hit disk.
impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("t0".to_string(), self.t0.to_value()),
            ("dt".to_string(), self.dt.to_value()),
            ("values".to_string(), self.values.to_value()),
        ])
    }
}

/// Deserializes through [`Trace::new`], revalidating the data and
/// rebuilding the prefix arrays.
impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let t0 = f64::from_value(v.field("t0")?)?;
        let dt = f64::from_value(v.field("dt")?)?;
        let values = Vec::<f64>::from_value(v.field("values")?)?;
        if dt <= 0.0 || values.is_empty() || values.iter().any(|x| !x.is_finite()) {
            return Err(serde::Error::new("invalid trace data"));
        }
        Ok(Trace::new(t0, dt, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        // 1.0 for t in [0,1), 0.5 for [1,2), 0.25 for [2,3)
        Trace::new(0.0, 1.0, vec![1.0, 0.5, 0.25])
    }

    #[test]
    fn at_steps_and_clamps() {
        let t = ramp();
        assert_eq!(t.at(-5.0), 1.0);
        assert_eq!(t.at(0.0), 1.0);
        assert_eq!(t.at(0.99), 1.0);
        assert_eq!(t.at(1.0), 0.5);
        assert_eq!(t.at(2.5), 0.25);
        assert_eq!(t.at(99.0), 0.25);
    }

    #[test]
    fn integral_exact_on_steps() {
        let t = ramp();
        assert!((t.integral(0.0, 3.0) - 1.75).abs() < 1e-9);
        assert!((t.integral(0.5, 1.5) - (0.5 + 0.25)).abs() < 1e-9);
        assert!((t.integral(2.0, 5.0) - 0.25 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_over_weights_segments() {
        let t = ramp();
        assert!((t.mean_over(0.0, 2.0) - 0.75).abs() < 1e-9);
        assert_eq!(t.mean_over(1.5, 1.5), 0.5);
    }

    #[test]
    fn work_integration_full_availability() {
        let t = Trace::constant(0.0, 1.0, 1.0, 10);
        assert!((t.time_to_complete(0.0, 4.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_half_availability_doubles_time() {
        let t = Trace::constant(0.0, 1.0, 0.5, 10);
        assert!((t.time_to_complete(2.0, 3.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_across_steps() {
        let t = ramp();
        // Work 1.25: first second supplies 1.0, next 0.25 needs 0.5 s at 0.5.
        assert!((t.time_to_complete(0.0, 1.25) - 1.5).abs() < 1e-9);
        // Work 1.75 consumes [0,3) exactly.
        assert!((t.time_to_complete(0.0, 1.75) - 3.0).abs() < 1e-9);
        // Beyond the horizon the last value holds: extra 0.25 at 0.25 -> +1 s.
        assert!((t.time_to_complete(0.0, 2.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn work_integration_zero_availability_floors() {
        let t = Trace::new(0.0, 1.0, vec![0.0, 1.0]);
        // Shouldn't hang; the floor makes the first second contribute ~0.
        let d = t.time_to_complete(0.0, 0.5);
        assert!((1.0..2.0).contains(&d), "d={d}");
    }

    #[test]
    fn zero_work_takes_zero_time() {
        assert_eq!(ramp().time_to_complete(1.3, 0.0), 0.0);
    }

    /// A varied 200-step trace with dead stretches, spikes, and smooth
    /// segments — exercise material for the equivalence tests.
    fn gnarly() -> Trace {
        Trace::from_fn(5.0, 0.7, 200, |t| {
            let s = (t * 0.43).sin().abs();
            if (20.0..25.0).contains(&t) {
                0.0 // dead stretch: work integration hits the floor
            } else if (40.0..41.0).contains(&t) {
                3.0 + s
            } else {
                0.05 + s
            }
        })
    }

    #[test]
    fn prefix_integral_matches_reference_walk() {
        let t = gnarly();
        let (lo, hi) = (t.t0() - 10.0, t.t_end() + 10.0);
        let span = hi - lo;
        // A dense lattice of endpoints, including many off-step points.
        let points: Vec<f64> = (0..=400).map(|i| lo + span * i as f64 / 400.0).collect();
        for (i, &a) in points.iter().enumerate() {
            for &b in &points[i..] {
                let fast = t.integral(a, b);
                let slow = t.integral_reference(a, b);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "integral([{a}, {b}]): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn prefix_integral_matches_reference_on_step_boundaries() {
        let t = gnarly();
        // Endpoints exactly on step boundaries (including t0 and t_end).
        for k in 0..=t.len() {
            let a = t.t0() + k as f64 * t.dt();
            for m in k..=t.len() {
                let b = t.t0() + m as f64 * t.dt();
                let fast = t.integral(a, b);
                let slow = t.integral_reference(a, b);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "boundary integral([{a}, {b}]): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn binary_search_completion_matches_reference_walk() {
        let t = gnarly();
        let starts = [
            t.t0() - 7.3,
            t.t0(),
            t.t0() + 0.35,
            t.t0() + 11.0,
            t.t_end() - 1.0,
            t.t_end() + 5.0,
        ];
        let works = [1e-9, 0.01, 0.5, 3.0, 17.0, 60.0, 500.0];
        for &s in &starts {
            for &w in &works {
                let fast = t.time_to_complete(s, w);
                let slow = t.time_to_complete_reference(s, w);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "ttc(start={s}, work={w}): {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn completion_matches_reference_when_work_ends_exactly_on_boundaries() {
        // Constant availability: any integer amount of work lands exactly
        // on a step boundary — the `capacity >= remaining` edge.
        let t = Trace::constant(2.0, 1.0, 0.5, 50);
        for k in 1..60u32 {
            let w = 0.5 * k as f64;
            let fast = t.time_to_complete(2.0, w);
            let slow = t.time_to_complete_reference(2.0, w);
            assert!((fast - slow).abs() <= 1e-9, "work {w}: {fast} vs {slow}");
            assert!((fast - k as f64).abs() <= 1e-9, "work {w} -> {fast}");
        }
    }

    #[test]
    fn completion_and_integral_are_inverses() {
        let t = gnarly();
        for &(s, w) in &[(6.0, 4.0), (0.0, 20.0), (30.0, 55.0)] {
            let d = t.time_to_complete(s, w);
            // The floored curve only differs from the raw trace on the
            // dead stretch; avoid it for the inverse check.
            let got = t.integral(s, s + d);
            if t.slice(s, s + d).min() > 0.0 {
                assert!((got - w).abs() < 1e-6, "integral back: {got} vs {w}");
            }
        }
    }

    #[test]
    fn long_trace_prefix_stays_accurate() {
        // 3600 one-second steps, production horizon scale: the Kahan
        // prefix keeps whole-horizon integrals at reference accuracy.
        let t = Trace::from_fn(0.0, 1.0, 3600, |x| 0.5 + 0.45 * (x * 0.01).sin());
        let fast = t.integral(0.0, 3600.0);
        let slow = t.integral_reference(0.0, 3600.0);
        assert!((fast - slow).abs() <= 1e-9, "{fast} vs {slow}");
        let d_fast = t.time_to_complete(17.3, 900.0);
        let d_slow = t.time_to_complete_reference(17.3, 900.0);
        assert!((d_fast - d_slow).abs() <= 1e-9, "{d_fast} vs {d_slow}");
    }

    #[test]
    fn sampling_cadence() {
        let t = ramp();
        let s = t.sample_every(0.0, 3.0, 0.5);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], (0.0, 1.0));
        assert_eq!(s[2], (1.0, 0.5));
    }

    #[test]
    fn from_fn_and_stats() {
        let t = Trace::from_fn(0.0, 1.0, 4, |x| x + 1.0);
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert!((t.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_preserves_values_and_alignment() {
        let t = Trace::new(10.0, 2.0, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = t.slice(13.0, 17.0);
        // Step containing 13.0 starts at 12.0; 17.0 lies in [16, 18), so
        // three steps are retained.
        assert_eq!(s.t0(), 12.0);
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.at(13.5), t.at(13.5));
        // Slices clamp to the horizon.
        let tail = t.slice(19.0, 100.0);
        assert_eq!(tail.values(), &[5.0]);
    }

    #[test]
    fn downsample_preserves_mean_and_integral() {
        let t = Trace::new(0.0, 1.0, vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0]);
        let d = t.downsample(2);
        assert_eq!(d.dt(), 2.0);
        assert_eq!(d.values(), &[2.0, 6.0, 3.0]);
        assert!((d.mean() - t.mean()).abs() < 1e-12);
        assert!((d.integral(0.0, 6.0) - t.integral(0.0, 6.0)).abs() < 1e-9);
        // Ragged tail chunk still averages correctly.
        let d3 = t.downsample(4);
        assert_eq!(d3.values(), &[4.0, 3.0]);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let t = ramp();
        assert_eq!(t.downsample(1), t);
    }

    // --- boundary cases for the view-routing helpers ---
    // `slice`, `downsample`, and `sample_every` back the `TraceRef`
    // materialization path, so their edges are load-bearing.

    #[test]
    fn sample_every_empty_interval_is_empty() {
        let t = ramp();
        assert!(t.sample_every(1.0, 1.0, 0.5).is_empty(), "a == b");
        // Interval shorter than one cadence still yields the start sample.
        assert_eq!(t.sample_every(1.0, 1.1, 0.5), vec![(1.0, 0.5)]);
    }

    #[test]
    #[should_panic]
    fn sample_every_rejects_inverted_interval() {
        ramp().sample_every(2.0, 1.0, 0.5);
    }

    #[test]
    fn sample_every_clamps_beyond_horizon() {
        let t = ramp();
        let s = t.sample_every(2.5, 4.5, 1.0);
        // Samples past t_end hold the final value.
        assert_eq!(s, vec![(2.5, 0.25), (3.5, 0.25)]);
    }

    #[test]
    fn slice_entirely_before_horizon_clamps_to_first_step() {
        let t = Trace::new(10.0, 2.0, vec![1.0, 2.0, 3.0]);
        // [0, 5) lies before t0: the clamped slice is the first step.
        let s = t.slice(0.0, 5.0);
        assert_eq!(s.t0(), 10.0);
        assert_eq!(s.values(), &[1.0]);
    }

    #[test]
    fn slice_entirely_beyond_horizon_clamps_to_last_step() {
        let t = Trace::new(10.0, 2.0, vec![1.0, 2.0, 3.0]);
        let s = t.slice(100.0, 200.0);
        assert_eq!(s.values(), &[3.0]);
        assert_eq!(s.t0(), 14.0);
    }

    #[test]
    fn slice_single_step_interval() {
        let t = Trace::new(0.0, 1.0, vec![1.0, 2.0, 3.0, 4.0]);
        // An interval inside one step keeps exactly that step.
        let s = t.slice(1.2, 1.8);
        assert_eq!(s.t0(), 1.0);
        assert_eq!(s.values(), &[2.0]);
    }

    #[test]
    fn downsample_factor_exceeding_len_collapses_to_mean() {
        let t = Trace::new(0.0, 1.0, vec![1.0, 3.0, 5.0]);
        let d = t.downsample(10);
        assert_eq!(d.len(), 1);
        assert!((d.values()[0] - 3.0).abs() < 1e-12);
        assert_eq!(d.dt(), 10.0);
    }

    #[test]
    fn downsample_non_divisible_factor_preserves_integral() {
        // 7 samples at factor 3: chunks of 3, 3, 1 — the ragged tail must
        // average over its own length, and the *integral over the covered
        // span* is only preserved chunk-by-chunk where chunks are full.
        let t = Trace::new(0.0, 1.0, vec![2.0, 4.0, 6.0, 1.0, 1.0, 1.0, 9.0]);
        let d = t.downsample(3);
        assert_eq!(d.values(), &[4.0, 1.0, 9.0]);
        // Full chunks preserve their own integral exactly.
        assert!((d.integral(0.0, 6.0) - t.integral(0.0, 6.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn downsample_rejects_zero_factor() {
        ramp().downsample(0);
    }

    #[test]
    fn serde_shape_is_defining_fields_only() {
        let t = ramp();
        let v = t.to_value();
        assert!(v.field("t0").is_ok());
        assert!(v.field("dt").is_ok());
        assert!(v.field("values").is_ok());
        assert!(
            v.field("prefix").is_err(),
            "derived data must not serialize"
        );
        let back = Trace::from_value(&v).unwrap();
        assert_eq!(back, t);
        // The rebuilt prefix answers queries identically.
        assert_eq!(back.integral(0.2, 2.9), t.integral(0.2, 2.9));
    }

    #[test]
    fn deserialize_rejects_invalid_data() {
        let empty = serde::Value::Map(vec![
            ("t0".to_string(), 0.0f64.to_value()),
            ("dt".to_string(), 1.0f64.to_value()),
            ("values".to_string(), serde::Value::Seq(vec![])),
        ]);
        assert!(Trace::from_value(&empty).is_err());
        let bad_dt = serde::Value::Map(vec![
            ("t0".to_string(), 0.0f64.to_value()),
            ("dt".to_string(), (-1.0f64).to_value()),
            ("values".to_string(), vec![1.0f64].to_value()),
        ]);
        assert!(Trace::from_value(&bad_dt).is_err());
    }

    #[test]
    #[should_panic]
    fn slice_rejects_empty_interval() {
        ramp().slice(2.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Trace::new(0.0, 1.0, vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_dt() {
        Trace::new(0.0, 0.0, vec![1.0]);
    }
}
