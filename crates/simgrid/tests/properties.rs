//! Property-based tests for the environment simulator: trace integration
//! identities, event-queue ordering, and load-generator invariants.

use prodpred_simgrid::load::{
    Dedicated, LoadGenerator, MarkovModal, SessionLoad, SingleModeAr1, MAX_AVAILABILITY,
    MIN_AVAILABILITY,
};
use prodpred_simgrid::{EventQueue, Trace};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(0.01f64..2.0, 1..64),
        0.01f64..10.0,
        -100.0f64..100.0,
    )
        .prop_map(|(values, dt, t0)| Trace::new(t0, dt, values))
}

proptest! {
    // ---- trace integration ----

    #[test]
    fn integral_is_additive(trace in trace_strategy(), a in -50.0f64..150.0, len1 in 0.0f64..50.0, len2 in 0.0f64..50.0) {
        let m = a + len1;
        let b = m + len2;
        let whole = trace.integral(a, b);
        let parts = trace.integral(a, m) + trace.integral(m, b);
        prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    #[test]
    fn integral_bounded_by_extremes(trace in trace_strategy(), a in -50.0f64..150.0, len in 0.0f64..50.0) {
        let b = a + len;
        let integral = trace.integral(a, b);
        prop_assert!(integral >= trace.min() * len - 1e-9);
        prop_assert!(integral <= trace.max() * len + 1e-9);
    }

    #[test]
    fn mean_over_within_range(trace in trace_strategy(), a in -50.0f64..150.0, len in 0.001f64..50.0) {
        let m = trace.mean_over(a, a + len);
        prop_assert!(m >= trace.min() - 1e-9);
        prop_assert!(m <= trace.max() + 1e-9);
    }

    #[test]
    fn time_to_complete_inverts_integral(trace in trace_strategy(), t0 in -20.0f64..100.0, work in 0.0f64..100.0) {
        let d = trace.time_to_complete(t0, work);
        prop_assert!(d >= 0.0);
        let done = trace.integral(t0, t0 + d);
        // The completed work matches the requested work (floor effects
        // only matter for zero-availability traces, excluded here).
        prop_assert!((done - work).abs() < 1e-6 * (1.0 + work), "work {work}, got {done}");
    }

    #[test]
    fn more_work_takes_at_least_as_long(trace in trace_strategy(), t0 in -20.0f64..100.0, w1 in 0.0f64..50.0, extra in 0.0f64..50.0) {
        let d1 = trace.time_to_complete(t0, w1);
        let d2 = trace.time_to_complete(t0, w1 + extra);
        prop_assert!(d2 >= d1 - 1e-12);
    }

    #[test]
    fn at_always_returns_a_sample_value(trace in trace_strategy(), t in -200.0f64..400.0) {
        let v = trace.at(t);
        prop_assert!(trace.values().contains(&v));
    }

    // ---- prefix-integral fast path vs step-walk reference ----

    #[test]
    fn prefix_integral_agrees_with_walk(trace in trace_strategy(), a in -150.0f64..250.0, len in 0.0f64..200.0) {
        let b = a + len;
        let fast = trace.integral(a, b);
        let slow = trace.integral_reference(a, b);
        prop_assert!((fast - slow).abs() <= 1e-9 * (1.0 + slow.abs()), "[{a}, {b}]: {fast} vs {slow}");
    }

    #[test]
    fn prefix_integral_agrees_on_step_boundaries(trace in trace_strategy(), k1 in 0usize..70, k2 in 0usize..70) {
        let (k1, k2) = (k1.min(trace.len()), k2.min(trace.len()));
        let a = trace.t0() + k1.min(k2) as f64 * trace.dt();
        let b = trace.t0() + k1.max(k2) as f64 * trace.dt();
        let fast = trace.integral(a, b);
        let slow = trace.integral_reference(a, b);
        prop_assert!((fast - slow).abs() <= 1e-9 * (1.0 + slow.abs()), "[{a}, {b}]: {fast} vs {slow}");
    }

    #[test]
    fn completion_search_agrees_with_walk(trace in trace_strategy(), t0 in -150.0f64..250.0, work in 0.0f64..500.0) {
        let fast = trace.time_to_complete(t0, work);
        let slow = trace.time_to_complete_reference(t0, work);
        prop_assert!((fast - slow).abs() <= 1e-9 * (1.0 + slow.abs()), "start {t0}, work {work}: {fast} vs {slow}");
    }

    // ---- event queue ----

    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn queue_fifo_for_equal_times(n in 1usize..50) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(1.0, i);
        }
        for expect in 0..n {
            let (_, got) = q.pop().unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    // ---- load generators ----

    #[test]
    fn generators_stay_in_bounds(seed in 0u64..1000, steps in 1usize..300) {
        let gens: Vec<Box<dyn LoadGenerator>> = vec![
            Box::new(Dedicated::default()),
            Box::new(SingleModeAr1 { mean: 0.5, sd: 0.1, phi: 0.8 }),
            Box::new(MarkovModal::platform2(20.0)),
            Box::new(SessionLoad::default()),
        ];
        for g in &gens {
            let t = g.generate(seed, 0.0, 1.0, steps);
            prop_assert_eq!(t.len(), steps);
            prop_assert!(t.min() >= MIN_AVAILABILITY);
            prop_assert!(t.max() <= MAX_AVAILABILITY);
        }
    }

    #[test]
    fn generators_deterministic(seed in 0u64..1000) {
        let g = MarkovModal::platform1(60.0);
        prop_assert_eq!(g.generate(seed, 0.0, 5.0, 50), g.generate(seed, 0.0, 5.0, 50));
    }
}
