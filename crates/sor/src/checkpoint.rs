//! Checkpoint/restart for the parallel SOR solvers.
//!
//! Red-Black SOR has no hidden solver state: at every iteration boundary
//! the workers' local strips (or blocks) plus their freshly exchanged
//! ghosts are exactly the global grid, and the algorithm carries no RNG
//! or accumulator across iterations. Running `iterations` as a sequence
//! of shorter *segments* — each one a fresh call into
//! [`crate::parallel::try_solve_parallel_strips`] or
//! [`crate::parallel2d::try_solve_parallel_blocks`] — is therefore
//! bit-for-bit identical to one long run, and a snapshot of
//! `(grid, completed iterations)` taken between segments is a fully
//! consistent [`Checkpoint`]: no red/black half-sweep is ever split
//! across it.
//!
//! [`CheckpointPolicy`] chooses the segment length (checkpoint every `k`
//! iterations); the checkpointed drivers record each snapshot into a
//! [`CheckpointStore`], and the `resume_*_from` entry points restart a
//! killed solve from the last snapshot instead of iteration 0. An
//! injected [`WorkerDeath`] is addressed in *global* half-iterations and
//! translated into each segment's local frame, so a death scheduled for
//! half-iteration `h` fires at the same global position regardless of
//! segmentation — which is what lets a test pin that a killed-then-
//! resumed solve is bit-identical to an unfaulted one.
//!
//! Error contract: on [`SolveError`] the grid holds the state of the
//! last *completed* segment (the most recent checkpoint, or the starting
//! state if none was taken) — always a consistent iteration boundary,
//! never a torn half-sweep.

use crate::decomp::Strip;
use crate::decomp2d::BlockLayout;
use crate::grid::Grid;
use crate::parallel::{try_solve_parallel_strips, SolveError, SolveOptions};
use crate::parallel2d::try_solve_parallel_blocks;
use crate::seq::SorParams;
use prodpred_simgrid::faults::WorkerDeath;
use serde::{Deserialize, Serialize};

/// Format version stamped into every [`Checkpoint`]. Bumped whenever the
/// snapshot layout changes; [`Checkpoint::restore`] refuses versions it
/// does not understand.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Typed failure of a checkpoint restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the checkpoint.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The checkpoint's grid dimension does not match the target grid.
    SizeMismatch {
        /// Dimension recorded in the checkpoint.
        found: usize,
        /// Dimension of the grid being restored into.
        expected: usize,
    },
    /// The checkpoint claims more completed iterations than the solve
    /// being resumed asks for in total.
    IterationOverrun {
        /// Iterations recorded as completed in the checkpoint.
        at: usize,
        /// Total iterations of the resumed solve.
        total: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} (this build reads {expected})"
                )
            }
            Self::SizeMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint grid is {found}x{found}, target is {expected}x{expected}"
                )
            }
            Self::IterationOverrun { at, total } => {
                write!(
                    f,
                    "checkpoint at iteration {at} beyond the solve's total {total}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// When to snapshot: every `every` completed red+black iterations; `0`
/// disables checkpointing (the solve runs as one segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Snapshot cadence in iterations; `0` = never.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `k` iterations.
    pub fn every(k: usize) -> Self {
        Self { every: k }
    }

    /// No checkpoints: the solve runs as a single segment.
    pub fn disabled() -> Self {
        Self { every: 0 }
    }

    /// How many snapshots a healthy `iterations`-long solve records
    /// under this policy: one per completed segment boundary short of
    /// the end (`run_segments` skips the final boundary), i.e.
    /// `⌊(iterations − 1) / every⌋`, or zero when disabled. This is the
    /// count the fault-aware predictor amortizes checkpoint write cost
    /// over.
    pub fn checkpoints_for(&self, iterations: usize) -> usize {
        match self.every {
            0 => 0,
            k => iterations.saturating_sub(1) / k,
        }
    }
}

/// A versioned, self-contained snapshot of a solve: the grid plus the
/// number of completed red+black iterations. Serde-serializable, so it
/// can also be persisted out of process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    version: u32,
    iteration: usize,
    grid: Grid,
}

impl Checkpoint {
    /// Snapshots `grid` as the state after `iteration` completed
    /// iterations.
    pub fn capture(grid: &Grid, iteration: usize) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            iteration,
            grid: grid.clone(),
        }
    }

    /// The format version this checkpoint was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Completed red+black iterations at the snapshot.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The snapshotted grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Copies the snapshotted state into `grid` after validating the
    /// format version and grid dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on a format-version or grid-dimension
    /// mismatch; `grid` is untouched on error.
    pub fn restore(&self, grid: &mut Grid) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: self.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        if self.grid.n() != grid.n() {
            return Err(CheckpointError::SizeMismatch {
                found: self.grid.n(),
                expected: grid.n(),
            });
        }
        grid.data_mut().copy_from_slice(self.grid.data());
        Ok(())
    }
}

/// In-memory checkpoint sink: keeps the latest snapshot and counts how
/// many were taken. The latest checkpoint is what `resume_*_from`
/// restarts a killed solve from.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    latest: Option<Checkpoint>,
    taken: usize,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent checkpoint, if any was taken.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }

    /// Total snapshots recorded over the store's lifetime.
    pub fn taken(&self) -> usize {
        self.taken
    }

    /// Records a snapshot as the new latest checkpoint.
    pub fn record(&mut self, checkpoint: Checkpoint) {
        self.latest = Some(checkpoint);
        self.taken += 1;
    }
}

/// Translates a globally addressed kill into segment-local
/// half-iterations for a segment starting at `start_iteration`. A death
/// scheduled before the segment has already happened (or been recovered
/// from) and never re-fires; one past the segment's end simply does not
/// fire within it.
fn kill_in_segment(kill: Option<WorkerDeath>, start_iteration: usize) -> Option<WorkerDeath> {
    let death = kill?;
    let at_half_iteration = death.at_half_iteration.checked_sub(2 * start_iteration)?;
    Some(WorkerDeath {
        rank: death.rank,
        at_half_iteration,
    })
}

/// Shared segmented driver: runs `params.iterations` from
/// `start_iteration` in `policy`-sized segments, recording a checkpoint
/// after every completed segment boundary short of the end.
fn run_segments(
    grid: &mut Grid,
    params: SorParams,
    options: &SolveOptions,
    policy: CheckpointPolicy,
    store: &mut CheckpointStore,
    start_iteration: usize,
    mut segment: impl FnMut(&mut Grid, SorParams, &SolveOptions) -> Result<(), SolveError>,
) -> Result<(), SolveError> {
    let total = params.iterations;
    let mut done = start_iteration;
    while done < total {
        let step = match policy.every {
            0 => total - done,
            k => k.min(total - done),
        };
        let segment_params = SorParams {
            omega: params.omega,
            iterations: step,
        };
        let segment_options = SolveOptions {
            policy: options.policy,
            kill: kill_in_segment(options.kill, done),
        };
        segment(grid, segment_params, &segment_options)?;
        done += step;
        if policy.every != 0 && done < total {
            store.record(Checkpoint::capture(grid, done));
        }
    }
    Ok(())
}

/// [`try_solve_parallel_strips`] run in checkpointed segments: every
/// `policy.every` iterations the grid is snapshotted into `store`, so a
/// later [`resume_strips_from`] restarts from the last consistent
/// red/black boundary instead of iteration 0.
///
/// Bit-for-bit identical to the unsegmented solve on a healthy run. On
/// error the grid holds the last completed segment's state (the latest
/// checkpoint, or the initial state if none was taken yet).
///
/// # Panics
///
/// Same configuration panics as [`try_solve_parallel_strips`].
///
/// # Errors
///
/// Returns the same [`SolveError`]s as [`try_solve_parallel_strips`].
pub fn try_solve_strips_checkpointed(
    grid: &mut Grid,
    params: SorParams,
    strips: &[Strip],
    options: &SolveOptions,
    policy: CheckpointPolicy,
    store: &mut CheckpointStore,
) -> Result<(), SolveError> {
    run_segments(grid, params, options, policy, store, 0, |g, p, o| {
        try_solve_parallel_strips(g, p, strips, o)
    })
}

/// Resumes a strip solve from `checkpoint`: restores the snapshotted
/// grid and runs the remaining `params.iterations - checkpoint.iteration()`
/// iterations, continuing to checkpoint under the same policy. The
/// injected kill in `options` keeps its *global* addressing — a death
/// already consumed before the checkpoint does not re-fire.
///
/// # Errors
///
/// Returns the same [`SolveError`]s as [`try_solve_parallel_strips`].
pub fn resume_strips_from(
    checkpoint: &Checkpoint,
    grid: &mut Grid,
    params: SorParams,
    strips: &[Strip],
    options: &SolveOptions,
    policy: CheckpointPolicy,
    store: &mut CheckpointStore,
) -> Result<(), SolveError> {
    let start = validate_resume(checkpoint, grid, params)?;
    run_segments(grid, params, options, policy, store, start, |g, p, o| {
        try_solve_parallel_strips(g, p, strips, o)
    })
}

/// [`try_solve_parallel_blocks`] run in checkpointed segments — the 2D
/// analogue of [`try_solve_strips_checkpointed`], with the same
/// consistency and error contract.
///
/// # Panics
///
/// Same configuration panics as [`try_solve_parallel_blocks`].
///
/// # Errors
///
/// Returns the same [`SolveError`]s as [`try_solve_parallel_blocks`].
pub fn try_solve_blocks_checkpointed(
    grid: &mut Grid,
    params: SorParams,
    layout: BlockLayout,
    options: &SolveOptions,
    policy: CheckpointPolicy,
    store: &mut CheckpointStore,
) -> Result<(), SolveError> {
    run_segments(grid, params, options, policy, store, 0, |g, p, o| {
        try_solve_parallel_blocks(g, p, layout, o)
    })
}

/// Resumes a block solve from `checkpoint` — the 2D analogue of
/// [`resume_strips_from`].
///
/// # Errors
///
/// Returns the same [`SolveError`]s as [`try_solve_parallel_blocks`].
pub fn resume_blocks_from(
    checkpoint: &Checkpoint,
    grid: &mut Grid,
    params: SorParams,
    layout: BlockLayout,
    options: &SolveOptions,
    policy: CheckpointPolicy,
    store: &mut CheckpointStore,
) -> Result<(), SolveError> {
    let start = validate_resume(checkpoint, grid, params)?;
    run_segments(grid, params, options, policy, store, start, |g, p, o| {
        try_solve_parallel_blocks(g, p, layout, o)
    })
}

/// Restores `checkpoint` into `grid` and returns the iteration to resume
/// from, rejecting checkpoints past the solve's total.
fn validate_resume(
    checkpoint: &Checkpoint,
    grid: &mut Grid,
    params: SorParams,
) -> Result<usize, SolveError> {
    if checkpoint.iteration() > params.iterations {
        return Err(SolveError::Checkpoint(CheckpointError::IterationOverrun {
            at: checkpoint.iteration(),
            total: params.iterations,
        }));
    }
    checkpoint.restore(grid).map_err(SolveError::Checkpoint)?;
    Ok(checkpoint.iteration())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::partition_equal;
    use crate::exchange::ExchangePolicy;
    use crate::seq::solve_seq;
    use std::time::Duration;

    fn solved_seq(n: usize, iters: usize) -> Grid {
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, iters));
        g
    }

    fn snappy() -> ExchangePolicy {
        ExchangePolicy {
            timeout: Duration::from_millis(200),
            retries: 1,
        }
    }

    #[test]
    fn checkpointed_healthy_solve_is_bit_identical() {
        // Segmentation must not change a single bit, for any cadence —
        // including cadences that do not divide the total.
        let n = 25;
        let iters = 20;
        let reference = solved_seq(n, iters);
        let strips = partition_equal(n - 2, 4);
        for every in [0, 1, 3, 7, 20, 50] {
            let mut g = Grid::laplace_problem(n);
            let mut store = CheckpointStore::new();
            try_solve_strips_checkpointed(
                &mut g,
                SorParams::for_grid(n, iters),
                &strips,
                &SolveOptions::reliable(),
                CheckpointPolicy::every(every),
                &mut store,
            )
            .unwrap();
            assert_eq!(g.max_diff(&reference), 0.0, "cadence {every}");
            let expected_taken = match every {
                0 => 0,
                k => (iters - 1) / k,
            };
            assert_eq!(store.taken(), expected_taken, "cadence {every}");
            assert_eq!(
                CheckpointPolicy::every(every).checkpoints_for(iters),
                expected_taken,
                "checkpoints_for must match the driver at cadence {every}"
            );
        }
    }

    #[test]
    fn checkpoints_for_handles_edge_cadences() {
        assert_eq!(CheckpointPolicy::disabled().checkpoints_for(100), 0);
        assert_eq!(CheckpointPolicy::every(4).checkpoints_for(0), 0);
        assert_eq!(CheckpointPolicy::every(4).checkpoints_for(1), 0);
        assert_eq!(CheckpointPolicy::every(1).checkpoints_for(5), 4);
        assert_eq!(CheckpointPolicy::every(4).checkpoints_for(20), 4);
    }

    #[test]
    fn checkpointed_blocks_are_bit_identical() {
        let n = 22;
        let iters = 12;
        let reference = solved_seq(n, iters);
        for every in [1, 4, 5] {
            let mut g = Grid::laplace_problem(n);
            let mut store = CheckpointStore::new();
            try_solve_blocks_checkpointed(
                &mut g,
                SorParams::for_grid(n, iters),
                BlockLayout::new(2, 3),
                &SolveOptions::reliable(),
                CheckpointPolicy::every(every),
                &mut store,
            )
            .unwrap();
            assert_eq!(g.max_diff(&reference), 0.0, "cadence {every}");
        }
    }

    #[test]
    fn killed_then_resumed_solve_is_bit_identical_to_unfaulted() {
        // The acceptance pin: kill a worker mid-solve, resume from the
        // last checkpoint, and end with exactly the unfaulted bits.
        let n = 33;
        let iters = 24;
        let params = SorParams::for_grid(n, iters);
        let strips = partition_equal(n - 2, 4);
        let reference = solved_seq(n, iters);

        // Kill rank 2 in iteration 13's black phase (global half 27):
        // with a cadence of 5 the last good checkpoint is iteration 10.
        let kill = WorkerDeath {
            rank: 2,
            at_half_iteration: 27,
        };
        let policy = CheckpointPolicy::every(5);
        let mut store = CheckpointStore::new();
        let mut g = Grid::laplace_problem(n);
        let err = try_solve_strips_checkpointed(
            &mut g,
            params,
            &strips,
            &SolveOptions {
                policy: snappy(),
                kill: Some(kill),
            },
            policy,
            &mut store,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::WorkerDied { rank: 2 });
        let checkpoint = store.latest().expect("checkpoints were taken").clone();
        assert_eq!(checkpoint.iteration(), 10);
        // The failing segment left the grid at the checkpoint boundary.
        assert_eq!(g.max_diff(checkpoint.grid()), 0.0);

        // The worker is restarted (transient death): resume without the
        // kill — it already fired — and finish.
        resume_strips_from(
            &checkpoint,
            &mut g,
            params,
            &strips,
            &SolveOptions {
                policy: snappy(),
                kill: None,
            },
            policy,
            &mut store,
        )
        .unwrap();
        assert_eq!(
            g.max_diff(&reference),
            0.0,
            "killed-then-resumed must be bit-identical to unfaulted"
        );
    }

    #[test]
    fn resume_honors_global_kill_addressing() {
        // A kill scheduled before the checkpoint never re-fires on
        // resume; one scheduled after it fires at the right position.
        let n = 21;
        let iters = 16;
        let params = SorParams::for_grid(n, iters);
        let strips = partition_equal(n - 2, 3);
        let reference = solved_seq(n, iters);

        let mut base = Grid::laplace_problem(n);
        let mut store = CheckpointStore::new();
        let policy = CheckpointPolicy::every(4);
        let early_kill = WorkerDeath {
            rank: 1,
            at_half_iteration: 9, // iteration 4's black phase
        };
        let err = try_solve_strips_checkpointed(
            &mut base,
            params,
            &strips,
            &SolveOptions {
                policy: snappy(),
                kill: Some(early_kill),
            },
            policy,
            &mut store,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::WorkerDied { rank: 1 });
        let checkpoint = store.latest().unwrap().clone();
        assert_eq!(checkpoint.iteration(), 4);

        // Resuming with the *same* global kill: half 9 is inside the
        // resumed range (it killed iteration 4), so it fires again —
        // modelling a permanent fault.
        let mut g = Grid::laplace_problem(n);
        checkpoint.restore(&mut g).unwrap();
        let err = resume_strips_from(
            &checkpoint,
            &mut g,
            params,
            &strips,
            &SolveOptions {
                policy: snappy(),
                kill: Some(early_kill),
            },
            policy,
            &mut store,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::WorkerDied { rank: 1 });

        // A kill addressed before the checkpoint is already in the past
        // and must not fire.
        let mut g = Grid::laplace_problem(n);
        resume_strips_from(
            &checkpoint,
            &mut g,
            params,
            &strips,
            &SolveOptions {
                policy: snappy(),
                kill: Some(WorkerDeath {
                    rank: 1,
                    at_half_iteration: 7,
                }),
            },
            policy,
            &mut store,
        )
        .unwrap();
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn checkpoint_serde_round_trip_resumes_exactly() {
        let n = 19;
        let iters = 12;
        let params = SorParams::for_grid(n, iters);
        let strips = partition_equal(n - 2, 2);
        let reference = solved_seq(n, iters);

        let mut g = Grid::laplace_problem(n);
        let mut store = CheckpointStore::new();
        try_solve_strips_checkpointed(
            &mut g,
            SorParams {
                omega: params.omega,
                iterations: 8,
            },
            &strips,
            &SolveOptions::reliable(),
            CheckpointPolicy::every(4),
            &mut store,
        )
        .unwrap();
        // Persist the iteration-4 checkpoint through JSON and resume the
        // full 12-iteration solve from it.
        let json = serde_json::to_string(store.latest().unwrap()).unwrap();
        let restored: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.version(), CHECKPOINT_VERSION);
        assert_eq!(restored.iteration(), 4);

        let mut resumed = Grid::laplace_problem(n);
        let mut store2 = CheckpointStore::new();
        resume_strips_from(
            &restored,
            &mut resumed,
            params,
            &strips,
            &SolveOptions::reliable(),
            CheckpointPolicy::every(4),
            &mut store2,
        )
        .unwrap();
        assert_eq!(resumed.max_diff(&reference), 0.0);
    }

    #[test]
    fn restore_rejects_wrong_version_and_size() {
        let g = Grid::laplace_problem(9);
        let cp = Checkpoint::capture(&g, 3);

        let mut wrong_size = Grid::laplace_problem(11);
        assert_eq!(
            cp.restore(&mut wrong_size),
            Err(CheckpointError::SizeMismatch {
                found: 9,
                expected: 11,
            })
        );

        // Forge a future-version checkpoint through serde.
        let json = serde_json::to_string(&cp).unwrap();
        let forged = json.replacen("\"version\":1", "\"version\":99", 1);
        assert_ne!(json, forged, "expected the version field in the JSON");
        let future: Checkpoint = serde_json::from_str(&forged).unwrap();
        let mut target = Grid::laplace_problem(9);
        assert_eq!(
            future.restore(&mut target),
            Err(CheckpointError::VersionMismatch {
                found: 99,
                expected: CHECKPOINT_VERSION,
            })
        );
    }

    #[test]
    fn resume_rejects_checkpoint_beyond_total() {
        let n = 9;
        let g = Grid::laplace_problem(n);
        let cp = Checkpoint::capture(&g, 30);
        let strips = partition_equal(n - 2, 2);
        let mut target = Grid::laplace_problem(n);
        let err = resume_strips_from(
            &cp,
            &mut target,
            SorParams::for_grid(n, 10),
            &strips,
            &SolveOptions::reliable(),
            CheckpointPolicy::disabled(),
            &mut CheckpointStore::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SolveError::Checkpoint(CheckpointError::IterationOverrun { at: 30, total: 10 })
        );
    }

    #[test]
    fn resume_at_exact_total_is_a_no_op() {
        let n = 9;
        let iters = 6;
        let reference = solved_seq(n, iters);
        let cp = Checkpoint::capture(&reference, iters);
        let strips = partition_equal(n - 2, 2);
        let mut g = Grid::laplace_problem(n);
        resume_strips_from(
            &cp,
            &mut g,
            SorParams::for_grid(n, iters),
            &strips,
            &SolveOptions::reliable(),
            CheckpointPolicy::every(2),
            &mut CheckpointStore::new(),
        )
        .unwrap();
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn killed_then_resumed_blocks_are_bit_identical() {
        let n = 26;
        let iters = 18;
        let params = SorParams::for_grid(n, iters);
        let layout = BlockLayout::new(2, 2);
        let reference = solved_seq(n, iters);

        let kill = WorkerDeath {
            rank: 3,
            at_half_iteration: 21,
        };
        let policy = CheckpointPolicy::every(4);
        let mut store = CheckpointStore::new();
        let mut g = Grid::laplace_problem(n);
        let err = try_solve_blocks_checkpointed(
            &mut g,
            params,
            layout,
            &SolveOptions {
                policy: snappy(),
                kill: Some(kill),
            },
            policy,
            &mut store,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::WorkerDied { rank: 3 });
        let checkpoint = store.latest().unwrap().clone();
        assert_eq!(checkpoint.iteration(), 8);

        resume_blocks_from(
            &checkpoint,
            &mut g,
            params,
            layout,
            &SolveOptions {
                policy: snappy(),
                kill: None,
            },
            policy,
            &mut store,
        )
        .unwrap();
        assert_eq!(g.max_diff(&reference), 0.0);
    }
}
