//! Strip decomposition of the SOR grid (paper Figure 6).
//!
//! "A common data distribution for this is a strip decomposition": each of
//! `P` processors owns a contiguous band of interior rows and exchanges
//! boundary rows with its neighbours each phase. "To balance load in a
//! distributed setting, we may assign more work to processors with greater
//! capacity, with the goal of having all processors complete at the same
//! time" (paper footnote 2) — hence weighted partitioning.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One processor's strip: a range of interior row indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Strip {
    /// Owning processor index.
    pub proc: usize,
    /// Interior rows `[start, end)` owned by the processor.
    pub rows: Range<usize>,
}

impl Strip {
    /// Number of rows in the strip.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of grid elements in the strip for an `n x n` grid
    /// (`NumElt_p` in the paper's component models).
    pub fn elements(&self, n: usize) -> usize {
        self.n_rows() * (n - 2)
    }
}

/// Partitions the `n_interior` rows (rows `1..=n_interior` of the grid)
/// into contiguous strips proportional to `weights`.
///
/// Larsen-style largest-remainder allocation: every processor with
/// positive weight gets at least the rows its proportion rounds to, and
/// the total is conserved exactly. Processors may receive zero rows when
/// there are more processors than rows.
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is negative, or all are zero.
pub fn partition_rows(n_interior: usize, weights: &[f64]) -> Vec<Strip> {
    assert!(!weights.is_empty(), "need at least one processor");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "at least one weight must be positive");

    let p = weights.len();
    let mut rows = vec![0usize; p];
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(p);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = n_interior as f64 * w / total;
        let floor = exact.floor() as usize;
        rows[i] = floor;
        assigned += floor;
        remainders.push((exact - floor as f64, i));
    }
    // Hand out the leftover rows to the largest remainders (ties by index
    // for determinism).
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = n_interior - assigned;
    for &(_, i) in remainders.iter().cycle() {
        if left == 0 {
            break;
        }
        rows[i] += 1;
        left -= 1;
    }

    // Build contiguous strips over interior rows 1..=n_interior.
    let mut out = Vec::with_capacity(p);
    let mut start = 1usize;
    for (i, &r) in rows.iter().enumerate() {
        out.push(Strip {
            proc: i,
            rows: start..start + r,
        });
        start += r;
    }
    out
}

/// Equal-work partition (the paper's dedicated-setting default).
pub fn partition_equal(n_interior: usize, p: usize) -> Vec<Strip> {
    partition_rows(n_interior, &vec![1.0; p])
}

/// Sanity check used by tests and the simulator: strips cover exactly the
/// interior rows, in order, with no overlap.
pub fn strips_are_valid(strips: &[Strip], n_interior: usize) -> bool {
    let mut expected = 1usize;
    for (i, s) in strips.iter().enumerate() {
        if s.proc != i || s.rows.start != expected {
            return false;
        }
        expected = s.rows.end;
    }
    expected == n_interior + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_partition_covers_all_rows() {
        let strips = partition_equal(100, 4);
        assert!(strips_are_valid(&strips, 100));
        for s in &strips {
            assert_eq!(s.n_rows(), 25);
        }
    }

    #[test]
    fn uneven_counts_distribute_remainder() {
        let strips = partition_equal(10, 3);
        assert!(strips_are_valid(&strips, 10));
        let sizes: Vec<usize> = strips.iter().map(|s| s.n_rows()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn weighted_partition_proportional() {
        // Machine twice as fast gets ~twice the rows.
        let strips = partition_rows(90, &[2.0, 1.0]);
        assert!(strips_are_valid(&strips, 90));
        assert_eq!(strips[0].n_rows(), 60);
        assert_eq!(strips[1].n_rows(), 30);
    }

    #[test]
    fn zero_weight_processor_gets_nothing() {
        let strips = partition_rows(10, &[1.0, 0.0, 1.0]);
        assert!(strips_are_valid(&strips, 10));
        assert_eq!(strips[1].n_rows(), 0);
    }

    #[test]
    fn more_processors_than_rows() {
        let strips = partition_equal(2, 5);
        assert!(strips_are_valid(&strips, 2));
        let total: usize = strips.iter().map(|s| s.n_rows()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn elements_counts_interior_columns() {
        let strips = partition_equal(8, 2);
        // 10x10 grid: 8 interior rows, 8 interior columns.
        assert_eq!(strips[0].elements(10), 4 * 8);
    }

    #[test]
    fn deterministic_for_equal_remainders() {
        let a = partition_rows(7, &[1.0, 1.0, 1.0]);
        let b = partition_rows(7, &[1.0, 1.0, 1.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero_weights() {
        partition_rows(5, &[0.0, 0.0]);
    }
}
