//! Two-dimensional block decomposition — the classic alternative to the
//! paper's strip decomposition.
//!
//! A strip decomposition sends `2N` boundary elements per interior
//! processor per phase regardless of `P`; a `pr x pc` block decomposition
//! sends `2(N/pr) + 2(N/pc)`, which shrinks as the processor grid grows
//! (the comm-bound advantage over strips is `sqrt(P)/2` for P >= 16).
//! The crossover between the two is a standard result the ablation
//! harness reproduces (`ablation_decomposition`).

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One processor's block: ranges of interior rows and columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Owning processor index (row-major in the processor grid).
    pub proc: usize,
    /// Processor-grid coordinates `(block row, block col)`.
    pub coords: (usize, usize),
    /// Interior grid rows `[start, end)`.
    pub rows: Range<usize>,
    /// Interior grid columns `[start, end)`.
    pub cols: Range<usize>,
}

impl Block {
    /// Rows owned.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Columns owned.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Elements owned.
    pub fn elements(&self) -> usize {
        self.n_rows() * self.n_cols()
    }
}

/// The processor grid shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockLayout {
    /// Processor-grid rows.
    pub pr: usize,
    /// Processor-grid columns.
    pub pc: usize,
}

impl BlockLayout {
    /// A layout with `pr * pc` processors.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0, "layout needs positive dimensions");
        Self { pr, pc }
    }

    /// The most square layout for `p` processors (factor pair closest to
    /// `sqrt(p)`).
    pub fn squarest(p: usize) -> Self {
        assert!(p > 0);
        let mut best = (1usize, p);
        let mut r = 1usize;
        while r * r <= p {
            if p.is_multiple_of(r) {
                best = (r, p / r);
            }
            r += 1;
        }
        Self::new(best.0, best.1)
    }

    /// Total processors.
    pub fn len(&self) -> usize {
        self.pr * self.pc
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The four neighbour processor indices of `(br, bc)`:
    /// `(up, down, left, right)`, `None` at the boundary.
    #[allow(clippy::type_complexity)]
    pub fn neighbours(
        &self,
        br: usize,
        bc: usize,
    ) -> (Option<usize>, Option<usize>, Option<usize>, Option<usize>) {
        assert!(br < self.pr && bc < self.pc);
        let idx = |r: usize, c: usize| r * self.pc + c;
        (
            (br > 0).then(|| idx(br - 1, bc)),
            (br + 1 < self.pr).then(|| idx(br + 1, bc)),
            (bc > 0).then(|| idx(br, bc - 1)),
            (bc + 1 < self.pc).then(|| idx(br, bc + 1)),
        )
    }

    /// Count of existing neighbours for `(br, bc)` (2, 3, or 4 — 2 only at
    /// corners).
    pub fn neighbour_count(&self, br: usize, bc: usize) -> usize {
        let (u, d, l, r) = self.neighbours(br, bc);
        [u, d, l, r].iter().flatten().count()
    }
}

fn split(total: usize, parts: usize) -> Vec<Range<usize>> {
    // Equal split with remainder spread over the leading parts, offset by
    // the interior origin 1.
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 1usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Partitions the interior of an `n x n` grid into equal blocks.
///
/// # Panics
///
/// Panics if the layout has more rows/cols than the interior provides.
pub fn partition_blocks(n: usize, layout: BlockLayout) -> Vec<Block> {
    let interior = n - 2;
    assert!(
        layout.pr <= interior && layout.pc <= interior,
        "layout {layout:?} too fine for an interior of {interior}"
    );
    let row_ranges = split(interior, layout.pr);
    let col_ranges = split(interior, layout.pc);
    let mut out = Vec::with_capacity(layout.len());
    for (br, rr) in row_ranges.iter().enumerate() {
        for (bc, cr) in col_ranges.iter().enumerate() {
            out.push(Block {
                proc: br * layout.pc + bc,
                coords: (br, bc),
                rows: rr.clone(),
                cols: cr.clone(),
            });
        }
    }
    out
}

/// Ghost elements a block exchanges per phase: one row segment per
/// vertical neighbour plus one column segment per horizontal neighbour,
/// each in both directions.
pub fn ghost_elements_per_phase(block: &Block, layout: BlockLayout) -> usize {
    let (u, d, l, r) = layout.neighbours(block.coords.0, block.coords.1);
    let vertical = [u, d].iter().flatten().count() * block.n_cols();
    let horizontal = [l, r].iter().flatten().count() * block.n_rows();
    2 * (vertical + horizontal) // send + receive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_interior_exactly() {
        let n = 34; // interior 32
        let layout = BlockLayout::new(4, 2);
        let blocks = partition_blocks(n, layout);
        assert_eq!(blocks.len(), 8);
        let total: usize = blocks.iter().map(Block::elements).sum();
        assert_eq!(total, 32 * 32);
        // Procs indexed row-major and in order.
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.proc, i);
        }
    }

    #[test]
    fn uneven_interior_spreads_remainder() {
        let n = 12; // interior 10
        let blocks = partition_blocks(n, BlockLayout::new(3, 3));
        let sizes: Vec<usize> = blocks.iter().map(Block::elements).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 100);
        // One block per block-row: remainder rows go to the leading rows.
        let rows: Vec<usize> = [0, 3, 6].iter().map(|&i| blocks[i].n_rows()).collect();
        assert_eq!(rows, vec![4, 3, 3]);
    }

    #[test]
    fn squarest_layouts() {
        assert_eq!(BlockLayout::squarest(4), BlockLayout::new(2, 2));
        assert_eq!(BlockLayout::squarest(12), BlockLayout::new(3, 4));
        assert_eq!(BlockLayout::squarest(7), BlockLayout::new(1, 7));
        assert_eq!(BlockLayout::squarest(16), BlockLayout::new(4, 4));
    }

    #[test]
    fn neighbour_topology() {
        let l = BlockLayout::new(3, 3);
        // Corner has two neighbours.
        assert_eq!(l.neighbour_count(0, 0), 2);
        // Edge has three.
        assert_eq!(l.neighbour_count(0, 1), 3);
        // Center has four.
        assert_eq!(l.neighbour_count(1, 1), 4);
        let (u, d, lft, r) = l.neighbours(1, 1);
        assert_eq!((u, d, lft, r), (Some(1), Some(7), Some(3), Some(5)));
    }

    #[test]
    fn strip_is_a_special_case() {
        let n = 18;
        let blocks = partition_blocks(n, BlockLayout::new(4, 1));
        for b in &blocks {
            assert_eq!(b.n_cols(), 16);
        }
    }

    #[test]
    fn block_ghosts_smaller_than_strip_ghosts_for_many_procs() {
        let n = 1002; // interior 1000
        let p = 16;
        // Strip: interior proc exchanges 2 rows of 1000 in each direction.
        let strip_ghosts = 2 * 2 * 1000;
        let blocks = partition_blocks(n, BlockLayout::squarest(p));
        let center = blocks
            .iter()
            .find(|b| BlockLayout::squarest(p).neighbour_count(b.coords.0, b.coords.1) == 4)
            .unwrap();
        let block_ghosts = ghost_elements_per_phase(center, BlockLayout::squarest(p));
        assert!(
            block_ghosts < strip_ghosts,
            "block {block_ghosts} vs strip {strip_ghosts}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_too_fine_layout() {
        partition_blocks(5, BlockLayout::new(4, 4));
    }
}
