//! Simulated distributed execution of Red-Black SOR on a production
//! platform — the machinery that produces the "actual execution times" of
//! the paper's Figures 9, 12, 14, and 16.
//!
//! Each processor advances a local clock. Per iteration and per colour
//! phase it (a) computes its strip's cells, with wall-clock time obtained
//! by integrating work against the machine's CPU-availability trace, and
//! (b) exchanges ghost rows with its strip neighbours over the shared
//! ethernet, with transfer times integrated against the bandwidth trace.
//! A processor cannot begin the next phase until its own sends have
//! drained *and* both neighbours' rows have arrived — the loose
//! synchronization whose accumulated delays produce the "skew" of the
//! paper's Figure 7 (bounded by `P` iterations).
//!
//! Self-contention among the application's own transfers is not modelled
//! separately: the bandwidth-availability trace already carries the
//! segment's contention state, and the application's ghost rows are small
//! compared to the competing traffic.

use crate::decomp::Strip;
use prodpred_simgrid::Platform;
use serde::{Deserialize, Serialize};

/// Bytes per grid element (f64).
pub const BYTES_PER_ELEMENT: f64 = 8.0;

/// Configuration of one simulated distributed run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DistSorConfig {
    /// Grid dimension `N` (the problem is `N x N`).
    pub n: usize,
    /// Red+black iterations.
    pub iterations: usize,
    /// Platform time at which the run starts.
    pub start_time: f64,
    /// Optional paging model. When set, a strip whose working set exceeds
    /// the machine's usable memory computes slower by the model's paging
    /// factor — the regime the paper excludes from Figure 9 ("problem
    /// sizes which fit within main memory").
    pub paging: Option<prodpred_simgrid::PagingModel>,
}

impl DistSorConfig {
    /// An in-core run (no paging model) starting at `start_time`.
    pub fn new(n: usize, iterations: usize, start_time: f64) -> Self {
        Self {
            n,
            iterations,
            start_time,
            paging: None,
        }
    }
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistSorResult {
    /// Wall-clock execution time: latest processor finish minus start.
    pub total_secs: f64,
    /// Absolute finish time of each processor.
    pub per_proc_finish: Vec<f64>,
    /// Wall-clock duration of each iteration (global frontier advance).
    pub iteration_secs: Vec<f64>,
    /// Final skew: latest minus earliest processor finish.
    pub skew_secs: f64,
}

/// Simulates one distributed SOR run against an abstract platform: the
/// generic core behind [`simulate`], also driven at grid scale by
/// `prodpred-core`'s sharded tenant simulation with
/// [`prodpred_simgrid::grid::GridPlatform`] trace views.
///
/// `compute(proc, strip, clock)` returns the wall-clock seconds for
/// `proc` to finish one colour phase of `strip` starting at `clock`;
/// `transfer(bytes, t)` the seconds to move one ghost-row message
/// starting at `t`. [`simulate`] wraps this with closures performing the
/// exact arithmetic it always performed, so results are bit-identical.
///
/// # Panics
///
/// Panics if any strip is empty or `iterations == 0`.
pub fn simulate_with(
    strips: &[Strip],
    cfg: DistSorConfig,
    mut compute: impl FnMut(usize, &Strip, f64) -> f64,
    mut transfer: impl FnMut(f64, f64) -> f64,
) -> DistSorResult {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert!(
        strips.iter().all(|s| s.n_rows() > 0),
        "every strip needs rows"
    );
    let p = strips.len();
    let ghost_bytes = cfg.n as f64 * BYTES_PER_ELEMENT;

    let mut clocks = vec![cfg.start_time; p];
    let mut iteration_secs = Vec::with_capacity(cfg.iterations);
    let mut frontier_prev = cfg.start_time;

    for _iter in 0..cfg.iterations {
        for _color in 0..2 {
            // Compute phase: half the strip's elements have this colour.
            let mut ready = vec![0.0f64; p];
            for (i, strip) in strips.iter().enumerate() {
                let dt = compute(i, strip, clocks[i]);
                ready[i] = clocks[i] + dt;
            }

            if p == 1 {
                clocks[0] = ready[0];
            } else {
                // Communication phase. A ghost-row exchange with a
                // neighbour is a rendezvous: it cannot begin until both
                // parties finish computing (neighbour lateness propagates —
                // the skew of Figure 7). On the half-duplex shared segment
                // each exchange then occupies one message slot per
                // direction at the endpoint, so an interior processor pays
                // for four transfers per phase (SendLR + ReceLR in the
                // structural model) and an edge processor for two.
                for i in 0..p {
                    let mut sync = ready[i];
                    if i > 0 {
                        sync = sync.max(ready[i - 1]);
                    }
                    if i < p - 1 {
                        sync = sync.max(ready[i + 1]);
                    }
                    let mut t = sync;
                    let messages = 2 * (usize::from(i > 0) + usize::from(i < p - 1));
                    for _ in 0..messages {
                        t += transfer(ghost_bytes, t);
                    }
                    clocks[i] = t;
                }
            }
        }
        let frontier = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        iteration_secs.push(frontier - frontier_prev);
        frontier_prev = frontier;
    }

    let finish_max = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let finish_min = clocks.iter().copied().fold(f64::INFINITY, f64::min);
    DistSorResult {
        total_secs: finish_max - cfg.start_time,
        per_proc_finish: clocks,
        iteration_secs,
        skew_secs: finish_max - finish_min,
    }
}

/// Simulates one distributed SOR run.
///
/// # Panics
///
/// Panics if there are more strips than machines, if any strip is empty,
/// or if `iterations == 0`.
pub fn simulate(platform: &Platform, strips: &[Strip], cfg: DistSorConfig) -> DistSorResult {
    assert!(
        strips.len() <= platform.machines.len(),
        "more strips than machines"
    );
    simulate_with(
        strips,
        cfg,
        |i, strip, clock| {
            let machine = &platform.machines[i];
            let mut elems = strip.elements(cfg.n) as f64 / 2.0;
            if let Some(paging) = &cfg.paging {
                // Paging inflates the per-element cost; expressing it
                // as extra elements keeps the load-trace integration.
                elems *= paging.slowdown(&machine.spec, strip.elements(cfg.n) as f64);
            }
            machine.compute_secs(elems, clock)
        },
        |bytes, t| platform.network.transfer_secs(bytes, t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::{partition_equal, partition_rows};
    use prodpred_simgrid::{MachineClass, Platform};

    fn dedicated4() -> Platform {
        Platform::dedicated(
            &[
                MachineClass::Sparc10,
                MachineClass::Sparc10,
                MachineClass::Sparc10,
                MachineClass::Sparc10,
            ],
            100_000.0,
        )
    }

    fn cfg(n: usize, iterations: usize) -> DistSorConfig {
        DistSorConfig {
            paging: None,
            n,
            iterations,
            start_time: 0.0,
        }
    }

    #[test]
    fn dedicated_homogeneous_matches_closed_form() {
        let p = dedicated4();
        let strips = partition_equal(998, 4);
        let r = simulate(&p, &strips, cfg(1000, 10));
        // Compute: 10 iters * 2 phases * (249 or 250 rows * 998 cols / 2)
        // elements * 0.9us; comm: 2 phases * sends/recvs of 8 KB at
        // 0.58 * 1.25 MB/s + 1 ms latency each.
        // Rough bound check: compute alone for the largest strip is
        // 20 * 250*998/2 * 0.9e-6 = 2.245 s; with comm it must be a bit
        // more, but well under 4 s.
        assert!(r.total_secs > 2.2, "too fast: {}", r.total_secs);
        assert!(r.total_secs < 4.0, "too slow: {}", r.total_secs);
        // Homogeneous dedicated machines: negligible skew.
        assert!(r.skew_secs < 0.2, "skew {}", r.skew_secs);
    }

    #[test]
    fn iteration_times_sum_to_total() {
        let p = dedicated4();
        let strips = partition_equal(498, 4);
        let r = simulate(&p, &strips, cfg(500, 8));
        let sum: f64 = r.iteration_secs.iter().sum();
        assert!((sum - r.total_secs).abs() < 1e-9);
        assert_eq!(r.iteration_secs.len(), 8);
    }

    #[test]
    fn loaded_machine_slows_the_whole_ring() {
        // One machine at half availability: its neighbours stall on its
        // ghost rows, so total time roughly doubles (skew propagation).
        use prodpred_simgrid::{Machine, MachineSpec, Trace};
        let mut p = dedicated4();
        p.machines[1] = Machine::new(
            MachineSpec::new("slow", MachineClass::Sparc10),
            Trace::constant(0.0, 1.0, 0.5, 200_000),
        );
        let strips = partition_equal(998, 4);
        let loaded = simulate(&p, &strips, cfg(1000, 10));
        let clean = simulate(&dedicated4(), &strips, cfg(1000, 10));
        assert!(
            loaded.total_secs > clean.total_secs * 1.6,
            "loaded {} vs clean {}",
            loaded.total_secs,
            clean.total_secs
        );
        // The unloaded machines finish with the loaded one (loose sync):
        // the skew cannot grow without bound.
        assert!(loaded.skew_secs < loaded.total_secs * 0.2);
    }

    #[test]
    fn weighted_decomposition_balances_heterogeneous_machines() {
        let p = Platform::dedicated(
            &[MachineClass::Sparc2, MachineClass::UltraSparc],
            1_000_000.0,
        );
        let n = 800usize;
        // Equal split: the Sparc-2 dominates.
        let equal = simulate(&p, &partition_equal(n - 2, 2), cfg(n, 10));
        // Speed-weighted split (inverse of per-element time).
        let w = [
            1.0 / MachineClass::Sparc2.benchmark_secs_per_element(),
            1.0 / MachineClass::UltraSparc.benchmark_secs_per_element(),
        ];
        let weighted = simulate(&p, &partition_rows(n - 2, &w), cfg(n, 10));
        assert!(
            weighted.total_secs < equal.total_secs * 0.55,
            "weighted {} vs equal {}",
            weighted.total_secs,
            equal.total_secs
        );
    }

    #[test]
    fn single_processor_has_no_comm() {
        let p = Platform::dedicated(&[MachineClass::Sparc10], 1_000_000.0);
        let strips = partition_equal(498, 1);
        let r = simulate(&p, &strips, cfg(500, 10));
        // Pure compute: 10 * 2 * (498*498/2) * 0.9e-6 = 2.232 s.
        let expect = 10.0 * 498.0 * 498.0 * 0.9e-6;
        assert!((r.total_secs - expect).abs() < 1e-6, "{}", r.total_secs);
        assert_eq!(r.skew_secs, 0.0);
    }

    #[test]
    fn production_run_exceeds_dedicated() {
        let prod = Platform::platform1(7, 100_000.0);
        let ded = Platform::dedicated(
            &[
                MachineClass::Sparc2,
                MachineClass::Sparc2,
                MachineClass::Sparc5,
                MachineClass::Sparc10,
            ],
            100_000.0,
        );
        let strips = partition_equal(998, 4);
        let tp = simulate(&prod, &strips, cfg(1000, 10)).total_secs;
        let td = simulate(&ded, &strips, cfg(1000, 10)).total_secs;
        assert!(tp > td * 1.5, "production {tp} vs dedicated {td}");
    }

    #[test]
    fn start_time_shifts_through_load_trace() {
        // A platform whose load improves later: starting later runs faster.
        use prodpred_simgrid::{Machine, MachineSpec, Trace};
        let mut values = vec![0.25; 5000];
        values.extend(vec![1.0; 100_000]);
        let m = Machine::new(
            MachineSpec::new("vary", MachineClass::Sparc10),
            Trace::new(0.0, 1.0, values),
        );
        let p = Platform {
            machines: vec![m],
            network: Platform::dedicated(&[MachineClass::Sparc10], 10.0).network,
            horizon: 105_000.0,
        };
        let strips = partition_equal(998, 1);
        let early = simulate(&p, &strips, cfg(1000, 10)).total_secs;
        let late = simulate(&p, &strips, DistSorConfig::new(1000, 10, 6000.0)).total_secs;
        assert!(late < early * 0.5, "late {late} vs early {early}");
    }

    #[test]
    fn simulate_with_closures_is_bit_identical_to_simulate() {
        // The generic core must reproduce the wrapped path exactly —
        // grid-scale tenant simulation relies on this equivalence.
        let p = Platform::platform2(13, 50_000.0);
        let strips = partition_equal(798, 4);
        let mut c = cfg(800, 12);
        c.paging = Some(prodpred_simgrid::PagingModel::default());
        let wrapped = simulate(&p, &strips, c);
        let direct = simulate_with(
            &strips,
            c,
            |i, strip, clock| {
                let machine = &p.machines[i];
                let mut elems = strip.elements(c.n) as f64 / 2.0;
                if let Some(paging) = &c.paging {
                    elems *= paging.slowdown(&machine.spec, strip.elements(c.n) as f64);
                }
                machine.compute_secs(elems, clock)
            },
            |bytes, t| p.network.transfer_secs(bytes, t),
        );
        assert_eq!(wrapped.total_secs.to_bits(), direct.total_secs.to_bits());
        assert_eq!(wrapped.per_proc_finish, direct.per_proc_finish);
        assert_eq!(wrapped.iteration_secs, direct.iteration_secs);
        assert_eq!(wrapped.skew_secs.to_bits(), direct.skew_secs.to_bits());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_iterations() {
        let p = dedicated4();
        simulate(&p, &partition_equal(10, 2), cfg(12, 0));
    }
}
