//! Simulated distributed execution over a 2D block decomposition — the
//! counterpart of [`crate::distsim`] for [`crate::decomp2d`] layouts, with
//! the same rendezvous/half-duplex communication semantics: a block
//! synchronizes with up to four neighbours per phase and pays one message
//! slot per direction per neighbour, with vertical messages of `n_cols`
//! elements and horizontal messages of `n_rows`.

use crate::decomp2d::{Block, BlockLayout};
use crate::distsim::{DistSorConfig, DistSorResult, BYTES_PER_ELEMENT};
use prodpred_simgrid::Platform;

/// Simulates one distributed run over blocks.
///
/// # Panics
///
/// Panics if blocks don't match the layout, there are more blocks than
/// machines, or `iterations == 0`.
pub fn simulate_blocks(
    platform: &Platform,
    blocks: &[Block],
    layout: BlockLayout,
    cfg: DistSorConfig,
) -> DistSorResult {
    assert!(cfg.iterations > 0, "need at least one iteration");
    assert_eq!(blocks.len(), layout.len(), "blocks must match the layout");
    assert!(
        blocks.len() <= platform.machines.len(),
        "more blocks than machines"
    );
    assert!(blocks.iter().all(|b| b.elements() > 0));
    let p = blocks.len();

    let mut clocks = vec![cfg.start_time; p];
    let mut iteration_secs = Vec::with_capacity(cfg.iterations);
    let mut frontier_prev = cfg.start_time;

    for _iter in 0..cfg.iterations {
        for _color in 0..2 {
            // Compute phase.
            let mut ready = vec![0.0f64; p];
            for (i, block) in blocks.iter().enumerate() {
                let machine = &platform.machines[i];
                let mut elems = block.elements() as f64 / 2.0;
                if let Some(paging) = &cfg.paging {
                    elems *= paging.slowdown(&machine.spec, block.elements() as f64);
                }
                ready[i] = clocks[i] + machine.compute_secs(elems, clocks[i]);
            }
            // Communication phase: rendezvous with all neighbours, then
            // pay for each edge in both directions.
            for (i, block) in blocks.iter().enumerate() {
                let (u, d, l, r) = layout.neighbours(block.coords.0, block.coords.1);
                let mut sync = ready[i];
                for q in [u, d, l, r].into_iter().flatten() {
                    sync = sync.max(ready[q]);
                }
                let mut t = sync;
                let row_bytes = block.n_cols() as f64 * BYTES_PER_ELEMENT;
                let col_bytes = block.n_rows() as f64 * BYTES_PER_ELEMENT;
                for (link, bytes) in [
                    (u, row_bytes),
                    (d, row_bytes),
                    (l, col_bytes),
                    (r, col_bytes),
                ] {
                    if link.is_some() {
                        // Send + receive, one slot each.
                        t += platform.network.transfer_secs(bytes, t);
                        t += platform.network.transfer_secs(bytes, t);
                    }
                }
                clocks[i] = t;
            }
        }
        let frontier = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        iteration_secs.push(frontier - frontier_prev);
        frontier_prev = frontier;
    }

    let finish_max = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let finish_min = clocks.iter().copied().fold(f64::INFINITY, f64::min);
    DistSorResult {
        total_secs: finish_max - cfg.start_time,
        per_proc_finish: clocks,
        iteration_secs,
        skew_secs: finish_max - finish_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::partition_equal;
    use crate::decomp2d::partition_blocks;
    use crate::distsim::simulate;
    use prodpred_simgrid::{MachineClass, Platform};

    fn dedicated(p: usize) -> Platform {
        Platform::dedicated(&vec![MachineClass::Sparc10; p], 1.0e6)
    }

    #[test]
    fn strip_layout_matches_1d_simulator() {
        // A pc = 1 block layout is the strip decomposition. The simulators
        // agree up to the ghost-row convention: the 1D code ships whole
        // grid rows (N elements), the 2D code ships interior segments
        // (N - 2) — a 0.2% message-size difference at N = 1000.
        let n = 1000;
        let p = 4;
        let platform = dedicated(p);
        let cfg = DistSorConfig::new(n, 10, 0.0);
        let blocks = partition_blocks(n, BlockLayout::new(p, 1));
        let r2d = simulate_blocks(&platform, &blocks, BlockLayout::new(p, 1), cfg);
        let strips = partition_equal(n - 2, p);
        let r1d = simulate(&platform, &strips, cfg);
        let rel = (r2d.total_secs - r1d.total_secs).abs() / r1d.total_secs;
        assert!(
            rel < 0.005,
            "2d {} vs 1d {}",
            r2d.total_secs,
            r1d.total_secs
        );
    }

    #[test]
    fn square_blocks_beat_strips_when_comm_dominates() {
        // 16 processors, small grid, slow network: comm dominates and the
        // square layout's shorter edges win.
        let n = 402;
        let p = 16;
        let mut platform = dedicated(p);
        // Slow the network to make communication dominant.
        platform.network.spec.dedicated_bw = 2.0e5;
        let cfg = DistSorConfig::new(n, 10, 0.0);
        let strips = partition_equal(n - 2, p);
        let t_strip = simulate(&platform, &strips, cfg).total_secs;
        let layout = BlockLayout::squarest(p);
        let blocks = partition_blocks(n, layout);
        let t_block = simulate_blocks(&platform, &blocks, layout, cfg).total_secs;
        assert!(
            t_block < t_strip,
            "block {t_block} should beat strip {t_strip}"
        );
    }

    #[test]
    fn strips_beat_square_blocks_for_few_procs_low_latency() {
        // 4 processors: strip interior procs have 2 neighbours (4 msgs),
        // 2x2 blocks have 2 neighbours too but latency per message counts
        // double the shorter edges — with a fast network and big messages
        // the layouts are close; with high latency strips win (fewer,
        // larger messages... same count here), so just assert both run
        // and produce comparable times.
        let n = 1000;
        let p = 4;
        let platform = dedicated(p);
        let cfg = DistSorConfig::new(n, 10, 0.0);
        let t_strip = simulate(&platform, &partition_equal(n - 2, p), cfg).total_secs;
        let layout = BlockLayout::squarest(p);
        let t_block =
            simulate_blocks(&platform, &partition_blocks(n, layout), layout, cfg).total_secs;
        let ratio = t_block / t_strip;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        let platform = Platform::platform2(3, 50_000.0);
        let layout = BlockLayout::new(2, 2);
        let blocks = partition_blocks(400, layout);
        let cfg = DistSorConfig::new(400, 5, 100.0);
        let a = simulate_blocks(&platform, &blocks, layout, cfg);
        let b = simulate_blocks(&platform, &blocks, layout, cfg);
        assert_eq!(a.total_secs, b.total_secs);
    }

    #[test]
    #[should_panic]
    fn rejects_layout_mismatch() {
        let platform = dedicated(4);
        let blocks = partition_blocks(100, BlockLayout::new(2, 2));
        simulate_blocks(
            &platform,
            &blocks,
            BlockLayout::new(4, 1),
            DistSorConfig::new(100, 1, 0.0),
        );
    }
}
