//! Zero-allocation ghost exchange between neighbouring workers.
//!
//! The parallel solvers ship boundary rows/columns to their neighbours
//! every half-iteration. A general-purpose channel allocates per send (a
//! queue node, plus the payload `Vec` the old code built fresh each
//! phase). This module replaces both with a capacity-one rendezvous
//! [`Mailbox`] and an owned-buffer recycling protocol:
//!
//! 1. the sender fills an owned `Vec<f64>` and moves it into the mailbox,
//! 2. the receiver copies it into its halo and *returns the same buffer*
//!    through a paired reverse mailbox,
//! 3. the sender reclaims that buffer before its next send.
//!
//! After the first half-iteration (which allocates each buffer once), the
//! steady state moves the same buffers back and forth forever: zero heap
//! allocations per iteration. The `sor` crate's `zero_alloc` integration
//! test pins this down with a counting global allocator.
//!
//! Deadlock freedom: every worker's phase is "send to all neighbours,
//! then drain all neighbours". A send blocks only on reclaiming the
//! buffer the neighbour returns while draining the *previous* phase —
//! which the neighbour reaches without needing anything from this
//! worker's current phase, so no cycle of waits can form.

use std::sync::{Arc, Condvar, Mutex};

/// Shared state of one mailbox: the slot and a disconnect flag.
struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

struct State<T> {
    slot: Option<T>,
    closed: bool,
}

/// The sending half of a capacity-one rendezvous channel.
pub struct MailSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a capacity-one rendezvous channel.
pub struct MailReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`MailReceiver::recv`] when the sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// Creates a connected capacity-one mailbox pair.
pub fn mailbox<T>() -> (MailSender<T>, MailReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            slot: None,
            closed: false,
        }),
        cond: Condvar::new(),
    });
    (
        MailSender {
            shared: Arc::clone(&shared),
        },
        MailReceiver { shared },
    )
}

impl<T> MailSender<T> {
    /// Moves `value` into the slot, blocking while the previous value is
    /// still unconsumed. Returns the value back on a disconnected peer.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        while state.slot.is_some() && !state.closed {
            state = self.shared.cond.wait(state).expect("mailbox poisoned");
        }
        if state.closed {
            return Err(value);
        }
        state.slot = Some(value);
        self.shared.cond.notify_all();
        Ok(())
    }
}

impl<T> MailReceiver<T> {
    /// Takes the value out of the slot, blocking until one arrives.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        loop {
            if let Some(value) = state.slot.take() {
                self.shared.cond.notify_all();
                return Ok(value);
            }
            if state.closed {
                return Err(Disconnected);
            }
            state = self.shared.cond.wait(state).expect("mailbox poisoned");
        }
    }
}

impl<T> Drop for MailSender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        state.closed = true;
        self.shared.cond.notify_all();
    }
}

impl<T> Drop for MailReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        state.closed = true;
        self.shared.cond.notify_all();
    }
}

/// One direction of a neighbour link with buffer recycling: a data
/// mailbox out and a buffer-return mailbox back.
pub struct RecycledSender {
    data: MailSender<Vec<f64>>,
    returns: MailReceiver<Vec<f64>>,
    /// The buffer currently owned by this side (None while in flight).
    stash: Option<Vec<f64>>,
}

/// The matching inbound endpoint: a data mailbox in and a buffer-return
/// mailbox out.
pub struct RecycledReceiver {
    data: MailReceiver<Vec<f64>>,
    returns: MailSender<Vec<f64>>,
}

/// Creates a recycling link carrying `len`-element rows. The sender's
/// single buffer is allocated up front; nothing allocates after that.
pub fn recycled_link(len: usize) -> (RecycledSender, RecycledReceiver) {
    let (data_tx, data_rx) = mailbox();
    let (ret_tx, ret_rx) = mailbox();
    (
        RecycledSender {
            data: data_tx,
            returns: ret_rx,
            stash: Some(vec![0.0; len]),
        },
        RecycledReceiver {
            data: data_rx,
            returns: ret_tx,
        },
    )
}

impl RecycledSender {
    /// Sends one boundary row: reclaims the recycled buffer (blocking for
    /// the neighbour's return if it is still in flight), fills it via
    /// `fill`, and ships it.
    ///
    /// # Panics
    ///
    /// Panics if the neighbour hung up.
    pub fn send_with(&mut self, fill: impl FnOnce(&mut [f64])) {
        let mut buf = match self.stash.take() {
            Some(buf) => buf,
            None => self.returns.recv().expect("neighbour hung up"),
        };
        fill(&mut buf);
        if self.data.send(buf).is_err() {
            panic!("neighbour hung up");
        }
    }
}

impl RecycledReceiver {
    /// Receives one boundary row, hands it to `consume`, and returns the
    /// buffer to the sender for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the neighbour hung up.
    pub fn recv_with(&self, consume: impl FnOnce(&[f64])) {
        let row = self.data.recv().expect("neighbour hung up");
        consume(&row);
        // Returning the buffer can only fail if the sender is gone, at
        // which point recycling no longer matters.
        let _ = self.returns.send(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mailbox_passes_values_in_order() {
        let (tx, rx) = mailbox();
        let h = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100u64 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        h.join().unwrap();
    }

    #[test]
    fn recv_errors_after_sender_drops() {
        let (tx, rx) = mailbox::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // buffered value still delivered
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = mailbox::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn recycled_link_round_trips_the_same_buffer() {
        let (mut tx, rx) = recycled_link(4);
        let h = thread::spawn(move || {
            let mut ptrs = Vec::new();
            for _ in 0..50 {
                rx.recv_with(|row| ptrs.push(row.as_ptr() as usize));
            }
            ptrs
        });
        for i in 0..50 {
            tx.send_with(|buf| buf.fill(i as f64));
        }
        let ptrs = h.join().unwrap();
        // Steady state reuses one allocation: every delivery saw the same
        // buffer address.
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "buffer not recycled");
    }

    #[test]
    fn two_way_exchange_does_not_deadlock() {
        // Mirror the solver's phase structure: both sides send first,
        // then drain, many times over.
        let (mut a_tx, b_rx) = recycled_link(8);
        let (mut b_tx, a_rx) = recycled_link(8);
        let peer = thread::spawn(move || {
            for i in 0..200 {
                b_tx.send_with(|buf| buf.fill(i as f64));
                b_rx.recv_with(|row| assert_eq!(row[0], i as f64));
            }
        });
        for i in 0..200 {
            a_tx.send_with(|buf| buf.fill(i as f64));
            a_rx.recv_with(|row| assert_eq!(row[0], i as f64));
        }
        peer.join().unwrap();
    }
}
