//! Zero-allocation ghost exchange between neighbouring workers.
//!
//! The parallel solvers ship boundary rows/columns to their neighbours
//! every half-iteration. A general-purpose channel allocates per send (a
//! queue node, plus the payload `Vec` the old code built fresh each
//! phase). This module replaces both with a capacity-one rendezvous
//! [`Mailbox`] and an owned-buffer recycling protocol:
//!
//! 1. the sender fills an owned `Vec<f64>` and moves it into the mailbox,
//! 2. the receiver copies it into its halo and *returns the same buffer*
//!    through a paired reverse mailbox,
//! 3. the sender reclaims that buffer before its next send.
//!
//! After the first half-iteration (which allocates each buffer once), the
//! steady state moves the same buffers back and forth forever: zero heap
//! allocations per iteration. The `sor` crate's `zero_alloc` integration
//! test pins this down with a counting global allocator.
//!
//! Deadlock freedom: every worker's phase is "send to all neighbours,
//! then drain all neighbours". A send blocks only on reclaiming the
//! buffer the neighbour returns while draining the *previous* phase —
//! which the neighbour reaches without needing anything from this
//! worker's current phase, so no cycle of waits can form.
//!
//! Fault tolerance: the `try_*` variants bound every wait with an
//! [`ExchangePolicy`] (per-attempt timeout plus bounded retries) and
//! surface a dead neighbour as [`ExchangeError::Disconnected`] and a
//! wedged one as [`ExchangeError::Timeout`] instead of blocking forever.
//! All locking recovers from a peer's panic (no poisoned-lock panics);
//! dropping either endpoint wakes and disconnects the other side.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mailbox mutex, recovering the guard if a peer panicked while
/// holding it. The slot/closed state is a single word each and every
/// transition leaves it consistent, so the data is always usable — a
/// neighbour's panic must surface as `Disconnected`, not as a secondary
/// poisoned-lock panic on this thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared state of one mailbox: the slot and a disconnect flag.
struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

struct State<T> {
    slot: Option<T>,
    closed: bool,
}

/// The sending half of a capacity-one rendezvous channel.
pub struct MailSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a capacity-one rendezvous channel.
pub struct MailReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`MailReceiver::recv`] when the sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// Error returned by [`MailReceiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The sender dropped its endpoint (worker exited or panicked).
    Disconnected,
    /// Nothing arrived within the deadline; the peer may be wedged.
    Timeout,
}

/// Error returned by [`MailSender::send_timeout`], carrying the
/// undelivered value back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The receiver dropped its endpoint.
    Disconnected(T),
    /// The previous value was not consumed within the deadline.
    Timeout(T),
}

/// A typed failure of one recycled-link exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeError {
    /// The neighbour hung up: its endpoints were dropped, either because
    /// it exited early or because it panicked.
    Disconnected,
    /// The neighbour is still connected but did not exchange within the
    /// policy's deadline across every retry.
    Timeout,
}

/// Timeout-and-retry policy for one fallible exchange. Each individual
/// wait is bounded by `timeout`, and the exchange *as a whole* is bounded
/// by [`ExchangePolicy::total_budget`] — `timeout × (retries + 1)` —
/// armed once on entry and shared across every phase (buffer reclaim and
/// delivery alike), so no sequence of near-miss attempts can stretch one
/// exchange past its documented deadline. A disconnected neighbour is
/// reported immediately — retrying cannot resurrect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangePolicy {
    /// Deadline per attempt.
    pub timeout: Duration,
    /// Extra attempts after the first before giving up.
    pub retries: u32,
}

impl Default for ExchangePolicy {
    /// One second per attempt, four retries: five seconds of total
    /// patience per exchange, far above any healthy phase latency.
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(1),
            retries: 4,
        }
    }
}

impl ExchangePolicy {
    /// The near-infinite policy backing the infallible solver entry
    /// points: a wedged neighbour is waited out for an hour per attempt
    /// (matching the old blocking behaviour for all practical purposes)
    /// while a *dead* neighbour still surfaces immediately.
    pub fn patient() -> Self {
        Self {
            timeout: Duration::from_secs(3600),
            retries: 0,
        }
    }

    /// Total wait budget of one exchange operation:
    /// `timeout × (retries + 1)`. Every `try_*` exchange arms this once
    /// on entry; all of its internal waits draw down the same budget.
    pub fn total_budget(&self) -> Duration {
        self.timeout.saturating_mul(self.retries + 1)
    }

    /// The next wait bounded by both the per-attempt `timeout` and the
    /// time remaining until `deadline`. `None` once the budget is spent.
    fn next_wait(&self, deadline: Instant) -> Option<Duration> {
        let remaining = deadline.saturating_duration_since(Instant::now()); // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
        if remaining.is_zero() {
            return None;
        }
        Some(self.timeout.min(remaining))
    }
}

/// Creates a connected capacity-one mailbox pair.
pub fn mailbox<T>() -> (MailSender<T>, MailReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            slot: None,
            closed: false,
        }),
        cond: Condvar::new(),
    });
    (
        MailSender {
            shared: Arc::clone(&shared),
        },
        MailReceiver { shared },
    )
}

impl<T> MailSender<T> {
    /// Moves `value` into the slot, blocking while the previous value is
    /// still unconsumed. Returns the value back on a disconnected peer.
    ///
    /// # Errors
    ///
    /// Returns the value back as `Err` when the receiver hung up.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut state = lock(&self.shared.state);
        while state.slot.is_some() && !state.closed {
            state = self
                .shared
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(value);
        }
        state.slot = Some(value);
        self.shared.cond.notify_all();
        Ok(())
    }

    /// Like [`MailSender::send`], but gives up once `timeout` elapses
    /// with the previous value still unconsumed. The value rides back in
    /// the error either way.
    ///
    /// # Errors
    ///
    /// Returns [`SendTimeoutError::Timeout`] when `timeout` elapses and
    /// [`SendTimeoutError::Disconnected`] when the peer hung up; the value
    /// rides back inside either variant.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout; // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
        let mut state = lock(&self.shared.state);
        while state.slot.is_some() && !state.closed {
            let now = Instant::now(); // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        if state.closed {
            return Err(SendTimeoutError::Disconnected(value));
        }
        state.slot = Some(value);
        self.shared.cond.notify_all();
        Ok(())
    }
}

impl<T> MailReceiver<T> {
    /// Takes the value out of the slot, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] when the sender hung up with the slot empty.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(value) = state.slot.take() {
                self.shared.cond.notify_all();
                return Ok(value);
            }
            if state.closed {
                return Err(Disconnected);
            }
            state = self
                .shared
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`MailReceiver::recv`], but gives up once `timeout` elapses
    /// with nothing delivered.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] when `timeout` elapses and
    /// [`RecvTimeoutError::Disconnected`] when the sender hung up with the
    /// slot empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout; // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(value) = state.slot.take() {
                self.shared.cond.notify_all();
                return Ok(value);
            }
            if state.closed {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now(); // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }
}

impl<T> Drop for MailSender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared.state);
        state.closed = true;
        self.shared.cond.notify_all();
    }
}

impl<T> Drop for MailReceiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared.state);
        state.closed = true;
        self.shared.cond.notify_all();
    }
}

/// One direction of a neighbour link with buffer recycling: a data
/// mailbox out and a buffer-return mailbox back.
pub struct RecycledSender {
    data: MailSender<Vec<f64>>,
    returns: MailReceiver<Vec<f64>>,
    /// The buffer currently owned by this side (None while in flight).
    stash: Option<Vec<f64>>,
}

/// The matching inbound endpoint: a data mailbox in and a buffer-return
/// mailbox out.
pub struct RecycledReceiver {
    data: MailReceiver<Vec<f64>>,
    returns: MailSender<Vec<f64>>,
}

/// Creates a recycling link carrying `len`-element rows. The sender's
/// single buffer is allocated up front; nothing allocates after that.
pub fn recycled_link(len: usize) -> (RecycledSender, RecycledReceiver) {
    let (data_tx, data_rx) = mailbox();
    let (ret_tx, ret_rx) = mailbox();
    (
        RecycledSender {
            data: data_tx,
            returns: ret_rx,
            stash: Some(vec![0.0; len]),
        },
        RecycledReceiver {
            data: data_rx,
            returns: ret_tx,
        },
    )
}

impl RecycledSender {
    /// Sends one boundary row: reclaims the recycled buffer (blocking for
    /// the neighbour's return if it is still in flight), fills it via
    /// `fill`, and ships it.
    ///
    /// # Panics
    ///
    /// Panics if the neighbour hung up.
    pub fn send_with(&mut self, fill: impl FnOnce(&mut [f64])) {
        let mut buf = match self.stash.take() {
            Some(buf) => buf,
            None => self.returns.recv().expect("neighbour hung up"), // tidy:allow(PP003): documented panic contract of the infallible path
        };
        fill(&mut buf);
        if self.data.send(buf).is_err() {
            panic!("neighbour hung up");
        }
    }

    /// Fallible [`RecycledSender::send_with`]: a dead neighbour surfaces
    /// as [`ExchangeError::Disconnected`], a wedged one as
    /// [`ExchangeError::Timeout`] once the policy's
    /// [total budget](ExchangePolicy::total_budget) is spent. The budget
    /// is armed once on entry and shared between the buffer-reclaim and
    /// delivery phases, so a slow-but-not-dead neighbour cannot stretch
    /// one exchange past `timeout × (retries + 1)`. On timeout the buffer
    /// is restashed, so a later retry of the whole exchange still
    /// allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ExchangeError::Disconnected`] for a dead neighbour and
    /// [`ExchangeError::Timeout`] once the policy's total budget is spent.
    pub fn try_send_with(
        &mut self,
        policy: &ExchangePolicy,
        fill: impl FnOnce(&mut [f64]),
    ) -> Result<(), ExchangeError> {
        let deadline = Instant::now() + policy.total_budget(); // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
        let mut buf = match self.stash.take() {
            Some(buf) => buf,
            None => loop {
                let Some(wait) = policy.next_wait(deadline) else {
                    return Err(ExchangeError::Timeout);
                };
                match self.returns.recv_timeout(wait) {
                    Ok(b) => break b,
                    Err(RecvTimeoutError::Disconnected) => return Err(ExchangeError::Disconnected),
                    Err(RecvTimeoutError::Timeout) => continue,
                }
            },
        };
        fill(&mut buf);
        let mut pending = buf;
        loop {
            let Some(wait) = policy.next_wait(deadline) else {
                self.stash = Some(pending);
                return Err(ExchangeError::Timeout);
            };
            match self.data.send_timeout(pending, wait) {
                Ok(()) => return Ok(()),
                Err(SendTimeoutError::Disconnected(_)) => return Err(ExchangeError::Disconnected),
                Err(SendTimeoutError::Timeout(b)) => pending = b,
            }
        }
    }
}

impl RecycledReceiver {
    /// Receives one boundary row, hands it to `consume`, and returns the
    /// buffer to the sender for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the neighbour hung up.
    pub fn recv_with(&self, consume: impl FnOnce(&[f64])) {
        let row = self.data.recv().expect("neighbour hung up"); // tidy:allow(PP003): documented panic contract of the infallible path
        consume(&row);
        // Returning the buffer can only fail if the sender is gone, at
        // which point recycling no longer matters.
        let _ = self.returns.send(row);
    }

    /// Fallible [`RecycledReceiver::recv_with`] with the same contract as
    /// [`RecycledSender::try_send_with`]: the policy's total budget is
    /// armed once on entry and bounds the whole receive. The post-success
    /// buffer-return leg may add at most one further `timeout`, so the
    /// worst case is `total_budget + timeout` ("budget plus one
    /// attempt").
    ///
    /// # Errors
    ///
    /// Returns [`ExchangeError::Disconnected`] for a dead neighbour and
    /// [`ExchangeError::Timeout`] once the policy's total budget is spent.
    pub fn try_recv_with(
        &self,
        policy: &ExchangePolicy,
        consume: impl FnOnce(&[f64]),
    ) -> Result<(), ExchangeError> {
        let deadline = Instant::now() + policy.total_budget(); // tidy:allow(PP001): runtime timeout bookkeeping, not simulated time
        let row = loop {
            let Some(wait) = policy.next_wait(deadline) else {
                return Err(ExchangeError::Timeout);
            };
            match self.data.recv_timeout(wait) {
                Ok(row) => break row,
                Err(RecvTimeoutError::Disconnected) => return Err(ExchangeError::Disconnected),
                Err(RecvTimeoutError::Timeout) => continue,
            }
        };
        consume(&row);
        // Returning the buffer can only fail if the sender is gone or
        // wedged, at which point recycling no longer matters — do not
        // let the return leg block this worker.
        let _ = self.returns.send_timeout(row, policy.timeout);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mailbox_passes_values_in_order() {
        let (tx, rx) = mailbox();
        let h = thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100u64 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        h.join().unwrap();
    }

    #[test]
    fn recv_errors_after_sender_drops() {
        let (tx, rx) = mailbox::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // buffered value still delivered
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = mailbox::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn recycled_link_round_trips_the_same_buffer() {
        let (mut tx, rx) = recycled_link(4);
        let h = thread::spawn(move || {
            let mut ptrs = Vec::new();
            for _ in 0..50 {
                rx.recv_with(|row| ptrs.push(row.as_ptr() as usize));
            }
            ptrs
        });
        for i in 0..50 {
            tx.send_with(|buf| buf.fill(i as f64));
        }
        let ptrs = h.join().unwrap();
        // Steady state reuses one allocation: every delivery saw the same
        // buffer address.
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "buffer not recycled");
    }

    fn snappy() -> ExchangePolicy {
        ExchangePolicy {
            timeout: Duration::from_millis(50),
            retries: 1,
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = mailbox::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_timeout_returns_the_value_on_full_slot() {
        let (tx, rx) = mailbox();
        tx.send(1u32).unwrap();
        // Slot occupied, receiver not draining: the value rides back.
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        );
        assert_eq!(rx.recv(), Ok(1));
        tx.send_timeout(3, Duration::from_millis(20)).unwrap();
        drop(rx);
        assert_eq!(
            tx.send_timeout(4, Duration::from_millis(20)),
            Err(SendTimeoutError::Disconnected(4))
        );
    }

    #[test]
    fn try_send_times_out_against_a_wedged_receiver() {
        // The receiver endpoint stays alive but never drains: the first
        // exchange parks a row in the slot, the second cannot reclaim the
        // buffer and must report Timeout, not block.
        let (mut tx, _rx) = recycled_link(4);
        tx.try_send_with(&snappy(), |buf| buf.fill(1.0)).unwrap();
        assert_eq!(
            tx.try_send_with(&snappy(), |buf| buf.fill(2.0)),
            Err(ExchangeError::Timeout)
        );
    }

    #[test]
    fn try_recv_times_out_against_a_silent_sender() {
        let (_tx, rx) = recycled_link(4);
        assert_eq!(
            rx.try_recv_with(&snappy(), |_| {}),
            Err(ExchangeError::Timeout)
        );
    }

    #[test]
    fn dead_neighbour_surfaces_as_disconnected_not_timeout() {
        let (mut tx, rx) = recycled_link(4);
        drop(rx);
        assert_eq!(
            tx.try_send_with(&snappy(), |buf| buf.fill(1.0)),
            Err(ExchangeError::Disconnected)
        );
        let (tx2, rx2) = recycled_link(4);
        drop(tx2);
        assert_eq!(
            rx2.try_recv_with(&snappy(), |_| {}),
            Err(ExchangeError::Disconnected)
        );
    }

    #[test]
    fn try_exchange_recycles_like_the_infallible_path() {
        let (mut tx, rx) = recycled_link(4);
        let policy = ExchangePolicy::default();
        let h = thread::spawn(move || {
            let mut ptrs = Vec::new();
            for _ in 0..50 {
                rx.try_recv_with(&policy, |row| ptrs.push(row.as_ptr() as usize))
                    .unwrap();
            }
            ptrs
        });
        for i in 0..50 {
            tx.try_send_with(&policy, |buf| buf.fill(i as f64)).unwrap();
        }
        let ptrs = h.join().unwrap();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "buffer not recycled");
    }

    #[test]
    fn wedged_receiver_costs_exactly_one_total_budget() {
        // Regression: the reclaim and delivery phases used to re-arm the
        // full per-attempt timeout independently, so one exchange could
        // cost up to twice its documented budget. The deadline is now
        // armed once on entry: a fully wedged neighbour costs the total
        // budget — no less (no premature give-up) and at most one extra
        // attempt more (scheduling slack).
        let policy = ExchangePolicy {
            timeout: Duration::from_millis(40),
            retries: 3,
        };
        let budget = policy.total_budget();
        assert_eq!(budget, Duration::from_millis(160));

        // Send side, wedged receiver: the first exchange parks the buffer
        // in flight, so the second spends its whole budget in the reclaim
        // phase waiting on a return that never comes.
        let (mut tx, _rx) = recycled_link(4);
        tx.try_send_with(&policy, |b| b.fill(1.0)).unwrap();
        let started = Instant::now();
        assert_eq!(
            tx.try_send_with(&policy, |b| b.fill(2.0)),
            Err(ExchangeError::Timeout)
        );
        let elapsed = started.elapsed();
        assert!(elapsed >= budget - Duration::from_millis(5), "{elapsed:?}");
        assert!(
            elapsed <= budget + policy.timeout + Duration::from_millis(100),
            "one wedged exchange must cost at most budget + one attempt, took {elapsed:?}"
        );

        // Receive side, silent sender.
        let (_tx3, rx3) = recycled_link(4);
        let started = Instant::now();
        assert_eq!(
            rx3.try_recv_with(&policy, |_| {}),
            Err(ExchangeError::Timeout)
        );
        let elapsed = started.elapsed();
        assert!(elapsed >= budget - Duration::from_millis(5), "{elapsed:?}");
        assert!(
            elapsed <= budget + policy.timeout + Duration::from_millis(100),
            "receive must honor the total budget, took {elapsed:?}"
        );
    }

    #[test]
    fn slow_mailbox_stays_within_budget_plus_one_attempt() {
        // A deliberately slow (but live) peer: consumes one row every
        // ~30 ms against a 25 ms per-attempt timeout, so most exchanges
        // need a mid-wait retry. No single call may exceed the total
        // budget plus one attempt.
        let policy = ExchangePolicy {
            timeout: Duration::from_millis(25),
            retries: 5,
        };
        let cap = policy.total_budget() + policy.timeout + Duration::from_millis(100);
        let (mut tx, rx) = recycled_link(4);
        let peer = thread::spawn(move || {
            for _ in 0..20 {
                thread::sleep(Duration::from_millis(30));
                rx.recv_with(|_| {});
            }
        });
        for i in 0..20 {
            let started = Instant::now();
            tx.try_send_with(&policy, |b| b.fill(i as f64))
                .expect("slow neighbour is alive; exchange must succeed");
            let elapsed = started.elapsed();
            assert!(elapsed <= cap, "call {i} took {elapsed:?} (cap {cap:?})");
        }
        peer.join().unwrap();
    }

    #[test]
    fn peer_panic_mid_exchange_is_disconnect_not_poison() {
        // A peer that panics after consuming one row must surface as
        // Disconnected on the survivor's side — never a poisoned-lock
        // panic.
        let (mut tx, rx) = recycled_link(2);
        let h = thread::spawn(move || {
            rx.recv_with(|_| {});
            panic!("worker dies");
        });
        tx.try_send_with(&ExchangePolicy::default(), |buf| buf.fill(1.0))
            .unwrap();
        assert!(h.join().is_err());
        let mut saw = Err(ExchangeError::Timeout);
        for _ in 0..3 {
            saw = tx.try_send_with(&snappy(), |buf| buf.fill(2.0));
            if saw == Err(ExchangeError::Disconnected) {
                break;
            }
        }
        assert_eq!(saw, Err(ExchangeError::Disconnected));
    }

    #[test]
    fn two_way_exchange_does_not_deadlock() {
        // Mirror the solver's phase structure: both sides send first,
        // then drain, many times over.
        let (mut a_tx, b_rx) = recycled_link(8);
        let (mut b_tx, a_rx) = recycled_link(8);
        let peer = thread::spawn(move || {
            for i in 0..200 {
                b_tx.send_with(|buf| buf.fill(i as f64));
                b_rx.recv_with(|row| assert_eq!(row[0], i as f64));
            }
        });
        for i in 0..200 {
            a_tx.send_with(|buf| buf.fill(i as f64));
            a_rx.recv_with(|row| assert_eq!(row[0], i as f64));
        }
        peer.join().unwrap();
    }
}
