//! The SOR grid: an `N x N` array with fixed (Dirichlet) boundary and a
//! red/black checkerboard colouring.
//!
//! "Red-Black SOR is a distributed stencil application whose data resides
//! on an NxN grid" (paper Section 2.2.1). Red cells (`i + j` even) depend
//! only on black neighbours and vice versa, so each colour can be updated
//! in parallel without ordering hazards.

use serde::{Deserialize, Serialize};

/// The two stencil colours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Color {
    /// Cells with `(i + j) % 2 == 0`.
    Red,
    /// Cells with `(i + j) % 2 == 1`.
    Black,
}

impl Color {
    /// The parity of the colour.
    pub fn parity(self) -> usize {
        match self {
            Color::Red => 0,
            Color::Black => 1,
        }
    }

    /// The opposite colour.
    pub fn other(self) -> Color {
        match self {
            Color::Red => Color::Black,
            Color::Black => Color::Red,
        }
    }
}

/// An `n x n` grid in row-major order. Rows `0` and `n-1` and columns `0`
/// and `n-1` are boundary cells, held fixed by the solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    n: usize,
    data: Vec<f64>,
}

impl Grid {
    /// A zero-initialized grid.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (no interior to relax).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "grid needs an interior: n >= 3, got {n}");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// A grid initialized by `f(i, j)` over all cells.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::new(n);
        for i in 0..n {
            for j in 0..n {
                g.data[i * n + j] = f(i, j);
            }
        }
        g
    }

    /// The canonical test problem: Laplace's equation with the top edge
    /// held at 1 and the other edges at 0, interior starting at 0.
    pub fn laplace_problem(n: usize) -> Self {
        Self::from_fn(n, |i, j| {
            if i == 0 && j > 0 && j < n - 1 {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Grid dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cell value.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets a cell value.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// A full row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Copies `values` into row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.n, "row length mismatch");
        self.data[i * self.n..(i + 1) * self.n].copy_from_slice(values);
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data, row-major — used by the slice-based relaxation
    /// kernel in [`crate::kernel`].
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Whether `(i, j)` is a boundary cell.
    #[inline]
    pub fn is_boundary(&self, i: usize, j: usize) -> bool {
        i == 0 || j == 0 || i == self.n - 1 || j == self.n - 1
    }

    /// Number of interior cells.
    pub fn interior_cells(&self) -> usize {
        (self.n - 2) * (self.n - 2)
    }

    /// The residual `max |laplacian|` over interior cells — zero at the
    /// exact solution of Laplace's equation.
    pub fn max_residual(&self) -> f64 {
        let n = self.n;
        let mut r: f64 = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let lap = self.get(i - 1, j)
                    + self.get(i + 1, j)
                    + self.get(i, j - 1)
                    + self.get(i, j + 1)
                    - 4.0 * self.get(i, j);
                r = r.max(lap.abs());
            }
        }
        r
    }

    /// Maximum absolute cell-wise difference against another grid.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn max_diff(&self, other: &Grid) -> f64 {
        assert_eq!(self.n, other.n, "grid size mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Sum of all interior cells — a cheap checksum for tests.
    pub fn interior_sum(&self) -> f64 {
        let mut s = 0.0;
        for i in 1..self.n - 1 {
            for j in 1..self.n - 1 {
                s += self.get(i, j);
            }
        }
        s
    }
}

/// The theoretically optimal SOR relaxation factor for an `n x n` Laplace
/// problem: `2 / (1 + sin(pi / (n - 1)))`.
pub fn optimal_omega(n: usize) -> f64 {
    assert!(n >= 3);
    2.0 / (1.0 + (std::f64::consts::PI / (n as f64 - 1.0)).sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut g = Grid::new(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.interior_cells(), 4);
        g.set(1, 2, 3.5);
        assert_eq!(g.get(1, 2), 3.5);
        assert_eq!(g.row(1), &[0.0, 0.0, 3.5, 0.0]);
    }

    #[test]
    fn boundary_classification() {
        let g = Grid::new(4);
        assert!(g.is_boundary(0, 2));
        assert!(g.is_boundary(3, 1));
        assert!(g.is_boundary(2, 0));
        assert!(!g.is_boundary(1, 1));
        assert!(!g.is_boundary(2, 2));
    }

    #[test]
    fn laplace_problem_boundary() {
        let g = Grid::laplace_problem(5);
        assert_eq!(g.get(0, 2), 1.0);
        assert_eq!(g.get(0, 0), 0.0); // corners stay 0
        assert_eq!(g.get(4, 2), 0.0);
        assert_eq!(g.get(2, 2), 0.0);
    }

    #[test]
    fn residual_zero_for_linear_field() {
        // u(i,j) = i + j is harmonic: laplacian is exactly zero.
        let g = Grid::from_fn(6, |i, j| (i + j) as f64);
        assert!(g.max_residual() < 1e-12);
    }

    #[test]
    fn residual_positive_for_bump() {
        let mut g = Grid::new(5);
        g.set(2, 2, 1.0);
        assert!(g.max_residual() > 3.9);
    }

    #[test]
    fn set_row_and_diff() {
        let mut a = Grid::new(3);
        let b = Grid::new(3);
        a.set_row(1, &[0.0, 2.0, 0.0]);
        assert_eq!(a.max_diff(&b), 2.0);
    }

    #[test]
    fn color_parity() {
        assert_eq!(Color::Red.parity(), 0);
        assert_eq!(Color::Black.parity(), 1);
        assert_eq!(Color::Red.other(), Color::Black);
    }

    #[test]
    fn optimal_omega_in_range() {
        for n in [8, 100, 2000] {
            let w = optimal_omega(n);
            assert!(w > 1.0 && w < 2.0, "omega {w} for n {n}");
        }
        // Larger grids want omega closer to 2.
        assert!(optimal_omega(1000) > optimal_omega(10));
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_grid() {
        Grid::new(2);
    }
}
