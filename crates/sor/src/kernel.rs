//! The shared five-point Red-Black relaxation kernel.
//!
//! Every solver in this crate — [`crate::seq`], [`crate::parallel`], and
//! [`crate::parallel2d`] — relaxes one colour of one row at a time. This
//! module factors that inner loop into a single slice-based routine so the
//! hot path is written (and optimized) exactly once: the row above, the
//! row being updated, and the row below are passed as three slices
//! obtained via `split_at_mut`, the colour is a precomputed start column,
//! and the loop strides by 2 with no `i * n + j` index arithmetic.
//!
//! The arithmetic per cell is identical to the historical indexed loops
//! (`u + omega * 0.25 * (sum - 4u)` with the same association order and
//! the same left-to-right cell order), so results are bit-for-bit
//! unchanged — the property tests below check this against a naive
//! indexed implementation on random grids.

/// Relaxes one colour on a single row of a five-point stencil.
///
/// `above`, `current`, and `below` are full rows of equal length `n`
/// (including the two boundary columns). Cells `start, start + 2, ...`
/// strictly inside `(0, n - 1)` are updated in place with the SOR step
/// `u += omega/4 * (above + below + left + right - 4u)`.
///
/// `start` encodes the colour for this row: `1` if column 1 has the
/// requested colour, `2` otherwise (see [`color_start`]).
///
/// # Panics
///
/// Panics if the rows differ in length or `start == 0` (column 0 is
/// boundary).
#[inline]
pub fn relax_row(above: &[f64], current: &mut [f64], below: &[f64], omega: f64, start: usize) {
    let n = current.len();
    assert_eq!(above.len(), n, "row length mismatch");
    assert_eq!(below.len(), n, "row length mismatch");
    assert!(start >= 1, "column 0 is boundary");
    if start + 1 >= n {
        return;
    }
    // omega * 0.25 is exact (multiplication by a power of two), so hoisting
    // it keeps the per-cell arithmetic bit-identical to the historical
    // `u + omega * 0.25 * (...)` form.
    let scale = omega * 0.25;
    // The right neighbour of cell j is the left neighbour of cell j + 2,
    // so carry it in a register: 3 loads + 1 store per cell instead of 4.
    // Cells of one colour are independent (their in-row neighbours are
    // the other colour, untouched by this sweep), so the loop is unrolled
    // for instruction-level parallelism without changing any result.
    let mut left = current[start - 1];
    let mut j = start;
    while j + 7 < n {
        let u0 = current[j];
        let r0 = current[j + 1];
        current[j] = u0 + scale * (above[j] + below[j] + left + r0 - 4.0 * u0);
        let u1 = current[j + 2];
        let r1 = current[j + 3];
        current[j + 2] = u1 + scale * (above[j + 2] + below[j + 2] + r0 + r1 - 4.0 * u1);
        let u2 = current[j + 4];
        let r2 = current[j + 5];
        current[j + 4] = u2 + scale * (above[j + 4] + below[j + 4] + r1 + r2 - 4.0 * u2);
        let u3 = current[j + 6];
        let r3 = current[j + 7];
        current[j + 6] = u3 + scale * (above[j + 6] + below[j + 6] + r2 + r3 - 4.0 * u3);
        left = r3;
        j += 8;
    }
    while j + 1 < n {
        let u = current[j];
        let right = current[j + 1];
        let sum = above[j] + below[j] + left + right;
        current[j] = u + scale * (sum - 4.0 * u);
        left = right;
        j += 2;
    }
}

/// First interior column of `color_parity` on global row `gi`, given the
/// global column of local column 1.
///
/// A cell is the requested colour when `(gi + gj) % 2 == color_parity`.
/// Local column `lj` maps to global column `col1_global + lj - 1`, so the
/// first matching local column is 1 or 2.
#[inline]
pub fn color_start(color_parity: usize, gi: usize, col1_global: usize) -> usize {
    1 + ((gi + col1_global + color_parity) % 2)
}

/// Relaxes one colour over rows `[row_lo, row_hi)` of a flat row-major
/// array of `n`-wide rows, using [`relax_row`] per row.
///
/// Rows are global: row `i` occupies `data[i * n..(i + 1) * n]` and its
/// colour start column is derived from `gi = global_row0 + i` (for the
/// sequential solver `global_row0 == 0`; workers pass their strip offset).
///
/// # Panics
///
/// Panics unless `1 <= row_lo` and `row_hi * n < data.len()` (each
/// relaxed row needs a row above and below).
pub fn relax_rows(
    data: &mut [f64],
    n: usize,
    color_parity: usize,
    omega: f64,
    row_lo: usize,
    row_hi: usize,
    global_row0: usize,
) {
    assert!(row_lo >= 1, "row 0 has no row above");
    assert!(row_hi * n < data.len(), "last row needs a row below");
    for i in row_lo..row_hi {
        let start = color_start(color_parity, global_row0 + i, 1);
        let (head, rest) = data.split_at_mut(i * n);
        let (current, tail) = rest.split_at_mut(n);
        relax_row(&head[(i - 1) * n..], current, &tail[..n], omega, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The historical indexed kernel, kept verbatim as the reference the
    /// slice kernel must match bit-for-bit.
    fn relax_rows_naive(
        data: &mut [f64],
        n: usize,
        color_parity: usize,
        omega: f64,
        row_lo: usize,
        row_hi: usize,
        global_row0: usize,
    ) {
        for i in row_lo..row_hi {
            let gi = global_row0 + i;
            let start = 1 + ((gi + 1 + color_parity) % 2);
            let mut j = start;
            while j < n - 1 {
                let u = data[i * n + j];
                let sum = data[(i - 1) * n + j]
                    + data[(i + 1) * n + j]
                    + data[i * n + j - 1]
                    + data[i * n + j + 1];
                data[i * n + j] = u + omega * 0.25 * (sum - 4.0 * u);
                j += 2;
            }
        }
    }

    proptest! {
        #[test]
        fn slice_kernel_matches_naive_kernel(
            n in 3usize..20,
            seed_vals in proptest::collection::vec(-10.0f64..10.0, 400),
            omega in 0.1f64..1.95,
            parity in 0usize..2,
            global_row0 in 0usize..5,
            lo_frac in 0.0f64..1.0,
            hi_frac in 0.0f64..1.0,
        ) {
            let mut a: Vec<f64> = seed_vals[..n * n].to_vec();
            let mut b = a.clone();
            // Random non-empty interior row range.
            let max_row = n - 2;
            let lo = 1 + ((lo_frac * max_row as f64) as usize).min(max_row - 1);
            let hi = (lo + 1 + (hi_frac * max_row as f64) as usize).min(n - 1);
            relax_rows(&mut a, n, parity, omega, lo, hi, global_row0);
            relax_rows_naive(&mut b, n, parity, omega, lo, hi, global_row0);
            prop_assert_eq!(a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        }

        #[test]
        fn single_row_kernel_matches_naive(
            vals in proptest::collection::vec(-5.0f64..5.0, 9),
            omega in 0.1f64..1.95,
            start in 1usize..3,
        ) {
            let above = vals[0..3].to_vec();
            let mut current = vals[3..6].to_vec();
            let below = vals[6..9].to_vec();
            let mut reference = current.clone();
            relax_row(&above, &mut current, &below, omega, start);
            // Inline naive update on the 1x3 row.
            let n = 3;
            let mut j = start;
            while j < n - 1 {
                let u = reference[j];
                let sum = above[j] + below[j] + reference[j - 1] + reference[j + 1];
                reference[j] = u + omega * 0.25 * (sum - 4.0 * u);
                j += 2;
            }
            prop_assert_eq!(current[1].to_bits(), reference[1].to_bits());
        }
    }

    #[test]
    fn color_start_matches_parity_definition() {
        // (gi + gj) % 2 == parity at the returned column, and the column
        // before it (if interior) has the other parity.
        for parity in 0..2 {
            for gi in 0..6 {
                for col1 in 0..6 {
                    let s = color_start(parity, gi, col1);
                    assert!(s == 1 || s == 2);
                    let gj = col1 + s - 1;
                    assert_eq!((gi + gj) % 2, parity, "gi={gi} col1={col1}");
                }
            }
        }
    }

    #[test]
    fn boundary_columns_untouched() {
        let above = vec![9.0; 8];
        let below = vec![9.0; 8];
        let mut current: Vec<f64> = (0..8).map(|x| x as f64).collect();
        for start in [1, 2] {
            relax_row(&above, &mut current, &below, 1.5, start);
            assert_eq!(current[0], 0.0);
            assert_eq!(current[7], 7.0);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_rows() {
        let above = vec![0.0; 4];
        let below = vec![0.0; 5];
        let mut current = vec![0.0; 5];
        relax_row(&above, &mut current, &below, 1.0, 1);
    }
}
