//! # prodpred-sor
//!
//! Distributed Red-Black Successive Over-Relaxation — the application the
//! paper validates its stochastic predictions on (Section 2.2.1).
//!
//! Three executions of the same algorithm:
//!
//! * [`seq`] — the sequential reference solver,
//! * [`parallel`] — a real multithreaded, shared-nothing implementation
//!   (strip decomposition, ghost-row exchange over channels), bit-for-bit
//!   equal to the sequential solver,
//! * [`distsim`] — a simulated *distributed* execution on a
//!   [`prodpred_simgrid::Platform`], integrating compute against CPU
//!   availability traces and ghost-row transfers against the shared
//!   ethernet, including the loose-synchronization skew of the paper's
//!   Figure 7. This is what generates the "actual execution times" in the
//!   experiment harness.
//!
//! Plus the [`grid`] data structure, [`decomp`] strip partitioning
//! (equal and capacity-weighted, per the paper's footnote 2), the shared
//! slice-based relaxation [`kernel`] every solver runs, and the
//! zero-allocation ghost [`exchange`] the threaded solvers communicate
//! through.
//!
//! Beyond the paper: a 2D block decomposition ([`decomp2d`]) with its own
//! real multithreaded solver ([`parallel2d`]) and distributed simulation
//! ([`distsim2d`]), used by the strip-vs-block ablation; and
//! [`checkpoint`]/restart for the threaded solvers, so a killed worker
//! resumes from the last consistent red/black iteration boundary instead
//! of iteration 0.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Public-facing code returns typed errors instead of unwrapping; tests
// may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod checkpoint;
pub mod decomp;
pub mod decomp2d;
pub mod distsim;
pub mod distsim2d;
pub mod exchange;
pub mod grid;
pub mod kernel;
pub mod parallel;
pub mod parallel2d;
pub mod protocol;
pub mod seq;

pub use checkpoint::{
    resume_blocks_from, resume_strips_from, try_solve_blocks_checkpointed,
    try_solve_strips_checkpointed, Checkpoint, CheckpointError, CheckpointPolicy, CheckpointStore,
    CHECKPOINT_VERSION,
};
pub use decomp::{partition_equal, partition_rows, Strip};
pub use decomp2d::{partition_blocks, Block, BlockLayout};
pub use distsim::{simulate, simulate_with, DistSorConfig, DistSorResult};
pub use distsim2d::simulate_blocks;
pub use exchange::{ExchangeError, ExchangePolicy};
pub use grid::{optimal_omega, Color, Grid};
pub use parallel::{
    solve_parallel, solve_parallel_strips, try_solve_parallel_strips, SolveError, SolveOptions,
};
pub use parallel2d::{solve_parallel_blocks, try_solve_parallel_blocks};
pub use seq::{solve_seq, solve_until, sweep_iteration, SorParams};
