//! The real multithreaded Red-Black SOR: strip decomposition, per-phase
//! ghost-row exchange over rendezvous mailboxes, loose neighbour
//! synchronization — a shared-nothing implementation of the distributed
//! algorithm the paper models, validated bit-for-bit against the
//! sequential solver.
//!
//! Because each colour's update reads only the *other* colour (fixed for
//! the duration of the sweep), the parallel result is identical to the
//! sequential one — floating-point operation order per cell does not
//! change with the decomposition.
//!
//! Ghost rows travel through [`crate::exchange`] links that recycle their
//! owned buffers (send the buffer, get it back), so steady-state
//! iterations perform **zero heap allocations** — see the `zero_alloc`
//! integration test.
//!
//! Fault tolerance: both solvers run on a fallible core
//! ([`try_solve_parallel_strips`]) in which every ghost exchange is
//! bounded by an [`ExchangePolicy`] and a worker's death — a panic, or an
//! injected [`WorkerDeath`] — surfaces as
//! [`SolveError::WorkerDied`] from the driver instead of a permanent
//! block or a secondary panic. The infallible entry points keep their
//! original signatures by running the same core under
//! [`ExchangePolicy::patient`].

use crate::decomp::{partition_equal, Strip};
use crate::exchange::{
    recycled_link, ExchangeError, ExchangePolicy, RecycledReceiver, RecycledSender,
};
use crate::grid::{Color, Grid};
use crate::kernel::relax_rows;
use crate::protocol::{half_iteration_script, ExchangeOp, Peer};
use crate::seq::SorParams;
use prodpred_simgrid::faults::WorkerDeath;

/// Typed failure of a fallible parallel solve. On error the grid is left
/// in its initial state — partial results are never assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// Worker `rank` died mid-solve: it panicked, or an injected
    /// [`WorkerDeath`] killed it at its configured half-iteration. When a
    /// death is only observed indirectly (a neighbour found the links
    /// dropped), `rank` is the dead neighbour as seen by the first
    /// reporting worker.
    WorkerDied {
        /// Strip (or block) index of the dead worker.
        rank: usize,
    },
    /// Worker `rank` exhausted its [`ExchangePolicy`] waiting on a
    /// neighbour that is still alive but not exchanging.
    ExchangeTimeout {
        /// Strip (or block) index of the worker that gave up.
        rank: usize,
    },
    /// A resume was handed an unusable [`crate::checkpoint::Checkpoint`]
    /// (wrong version, wrong grid size, or past the solve's end).
    Checkpoint(crate::checkpoint::CheckpointError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerDied { rank } => write!(f, "worker {rank} died mid-solve"),
            Self::ExchangeTimeout { rank } => {
                write!(f, "worker {rank} timed out exchanging ghost data")
            }
            Self::Checkpoint(e) => write!(f, "unusable checkpoint: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    /// The underlying [`CheckpointError`](crate::checkpoint::CheckpointError)
    /// for [`SolveError::Checkpoint`], so `Box<dyn Error>` chains (the
    /// service layer's error propagation) reach the root cause without
    /// matching on every variant.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::WorkerDied { .. } | Self::ExchangeTimeout { .. } => None,
        }
    }
}

impl From<crate::checkpoint::CheckpointError> for SolveError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Options for a fallible parallel solve: how patiently workers wait on
/// their neighbours, and an optional injected worker death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveOptions {
    /// Timeout-and-retry policy for every ghost exchange.
    pub policy: ExchangePolicy,
    /// Kill one worker at a chosen half-iteration (half-iteration `2k`
    /// is iteration `k`'s red phase). A rank outside the decomposition or
    /// a half-iteration past the end of the solve never fires.
    pub kill: Option<WorkerDeath>,
}

impl SolveOptions {
    /// The options backing the infallible entry points: near-infinite
    /// patience for wedged neighbours, no injected death. A *dead*
    /// neighbour still surfaces immediately.
    pub fn reliable() -> Self {
        Self {
            policy: ExchangePolicy::patient(),
            kill: None,
        }
    }
}

/// How one worker's run ended, as reported to the driver.
pub(crate) enum WorkerEnd {
    Completed,
    /// The injected death fired: the worker exited, dropping its links.
    Died,
    /// A link to `neighbour` disconnected — that worker died or exited.
    NeighbourLost {
        neighbour: usize,
    },
    /// The exchange policy ran out against a still-connected neighbour.
    TimedOut,
}

pub(crate) fn end_of(e: ExchangeError, neighbour: usize) -> WorkerEnd {
    match e {
        ExchangeError::Disconnected => WorkerEnd::NeighbourLost { neighbour },
        ExchangeError::Timeout => WorkerEnd::TimedOut,
    }
}

/// Resolves the per-worker end states into the solve's result. An actual
/// death (panic or injected) names its own rank; a death seen only
/// through a dropped link names the neighbour; timeouts rank below
/// deaths because a cascade of timeouts usually *starts* at a death.
pub(crate) fn resolve(
    ends: Vec<(usize, std::thread::Result<WorkerEnd>)>,
) -> Result<(), SolveError> {
    let mut lost = None;
    let mut timed_out = None;
    for (rank, end) in ends {
        match end {
            Err(_) | Ok(WorkerEnd::Died) => return Err(SolveError::WorkerDied { rank }),
            Ok(WorkerEnd::NeighbourLost { neighbour }) => {
                if lost.is_none() {
                    lost = Some(neighbour);
                }
            }
            Ok(WorkerEnd::TimedOut) => {
                if timed_out.is_none() {
                    timed_out = Some(rank);
                }
            }
            Ok(WorkerEnd::Completed) => {}
        }
    }
    if let Some(rank) = lost {
        return Err(SolveError::WorkerDied { rank });
    }
    if let Some(rank) = timed_out {
        return Err(SolveError::ExchangeTimeout { rank });
    }
    Ok(())
}

/// True when the injected death targets `rank` at half-iteration `half`.
pub(crate) fn death_fires(kill: Option<WorkerDeath>, rank: usize, half: usize) -> bool {
    kill.is_some_and(|d| d.rank == rank && d.at_half_iteration == half)
}

/// A worker's local state: its strip rows plus two ghost rows.
struct Worker {
    /// Global index of the first owned row.
    global_start: usize,
    /// Number of owned rows.
    rows: usize,
    /// Grid dimension.
    n: usize,
    /// Local data: `(rows + 2) x n`, row 0 = upper ghost, row rows+1 =
    /// lower ghost.
    data: Vec<f64>,
}

impl Worker {
    fn new(grid: &Grid, strip: &Strip) -> Self {
        let n = grid.n();
        let rows = strip.n_rows();
        let mut data = Vec::with_capacity((rows + 2) * n);
        // Upper ghost = row above the strip (boundary or neighbour row).
        data.extend_from_slice(grid.row(strip.rows.start - 1));
        for r in strip.rows.clone() {
            data.extend_from_slice(grid.row(r));
        }
        data.extend_from_slice(grid.row(strip.rows.end));
        Self {
            global_start: strip.rows.start,
            rows,
            n,
            data,
        }
    }

    /// Relaxes the given colour over all owned rows via the shared slice
    /// kernel. Local row `l` is global row `global_start + l - 1`.
    fn sweep(&mut self, color: Color, omega: f64) {
        relax_rows(
            &mut self.data,
            self.n,
            color.parity(),
            omega,
            1,
            self.rows + 1,
            self.global_start - 1,
        );
    }

    fn copy_top_row(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.data[self.n..2 * self.n]);
    }

    fn copy_bottom_row(&self, out: &mut [f64]) {
        let l = self.rows;
        out.copy_from_slice(&self.data[l * self.n..(l + 1) * self.n]);
    }

    fn set_upper_ghost(&mut self, row: &[f64]) {
        self.data[..self.n].copy_from_slice(row);
    }

    fn set_lower_ghost(&mut self, row: &[f64]) {
        let l = self.rows + 1;
        self.data[l * self.n..(l + 1) * self.n].copy_from_slice(row);
    }

    fn owned_rows(&self) -> &[f64] {
        &self.data[self.n..(self.rows + 1) * self.n]
    }
}

/// Mailbox bundle for one worker's neighbour links.
#[derive(Default)]
struct Links {
    to_up: Option<RecycledSender>,
    from_up: Option<RecycledReceiver>,
    to_down: Option<RecycledSender>,
    from_down: Option<RecycledReceiver>,
}

/// One worker's full run: sweep, then execute the extracted
/// [`half_iteration_script`] — ship boundary rows to both neighbours,
/// then drain fresh ghosts — every half-iteration. Any exchange failure
/// or injected death ends the run early (dropping the worker's links,
/// which is what a neighbour observes as this worker's death).
///
/// The exchange ordering is *not* open-coded here: the script from
/// [`crate::protocol`] is the single source of truth, shared with the
/// `prodpred-analysis` model checker that exhaustively proves the
/// protocol deadlock-free for small configurations.
fn worker_loop(
    rank: usize,
    ranks: usize,
    worker: &mut Worker,
    link: &mut Links,
    params: SorParams,
    policy: &ExchangePolicy,
    kill: Option<WorkerDeath>,
) -> WorkerEnd {
    let script = half_iteration_script(rank, ranks);
    let mut half = 0usize;
    for _ in 0..params.iterations {
        for color in [Color::Red, Color::Black] {
            if death_fires(kill, rank, half) {
                return WorkerEnd::Died;
            }
            worker.sweep(color, params.omega);
            for op in &script {
                if let Err(e) = run_op(*op, worker, link, policy) {
                    let peer = match op {
                        ExchangeOp::Send(p) | ExchangeOp::Recv(p) => *p,
                    };
                    return end_of(e, peer.rank_of(rank));
                }
            }
            half += 1;
        }
    }
    WorkerEnd::Completed
}

/// Executes one scripted mailbox operation against the worker's links.
/// The script only names neighbours the decomposition gave this rank, so
/// the matching link is always present.
fn run_op(
    op: ExchangeOp,
    worker: &mut Worker,
    link: &mut Links,
    policy: &ExchangePolicy,
) -> Result<(), ExchangeError> {
    match op {
        ExchangeOp::Send(Peer::Up) => link
            .to_up
            .as_mut()
            .expect("script sends up only when an upper link exists") // tidy:allow(PP003): half_iteration_script only emits ops for links that exist
            .try_send_with(policy, |buf| worker.copy_top_row(buf)),
        ExchangeOp::Send(Peer::Down) => link
            .to_down
            .as_mut()
            .expect("script sends down only when a lower link exists") // tidy:allow(PP003): half_iteration_script only emits ops for links that exist
            .try_send_with(policy, |buf| worker.copy_bottom_row(buf)),
        ExchangeOp::Recv(Peer::Up) => link
            .from_up
            .as_ref()
            .expect("script receives up only when an upper link exists") // tidy:allow(PP003): half_iteration_script only emits ops for links that exist
            .try_recv_with(policy, |row| worker.set_upper_ghost(row)),
        ExchangeOp::Recv(Peer::Down) => link
            .from_down
            .as_ref()
            .expect("script receives down only when a lower link exists") // tidy:allow(PP003): half_iteration_script only emits ops for links that exist
            .try_recv_with(policy, |row| worker.set_lower_ghost(row)),
    }
}

/// Fallible core of the strip solver: every ghost exchange is bounded by
/// `options.policy`, and a worker death — a panic, or `options.kill`
/// firing — returns [`SolveError::WorkerDied`] instead of deadlocking or
/// re-panicking. On any error the grid is left in its initial state.
///
/// # Panics
///
/// Panics if any strip is empty (decompose with `n >> p`), if strips do
/// not tile the interior, or on invalid `omega` — configuration errors,
/// not runtime faults.
///
/// # Errors
///
/// Returns [`SolveError::WorkerDied`] when a worker panics, an injected
/// death fires, or a neighbour exchange disconnects or exhausts its
/// timeout budget.
pub fn try_solve_parallel_strips(
    grid: &mut Grid,
    params: SorParams,
    strips: &[Strip],
    options: &SolveOptions,
) -> Result<(), SolveError> {
    assert!(
        params.omega > 0.0 && params.omega < 2.0,
        "omega must lie in (0,2)"
    );
    assert!(
        crate::decomp::strips_are_valid(strips, grid.n() - 2),
        "strips must tile the interior rows"
    );
    assert!(
        strips.iter().all(|s| s.n_rows() > 0),
        "every processor needs at least one row"
    );
    let p = strips.len();
    if p == 1 {
        // A single worker exchanges nothing, but an injected death still
        // kills the solve before it completes.
        if options
            .kill
            .is_some_and(|d| d.rank == 0 && d.at_half_iteration < 2 * params.iterations)
        {
            return Err(SolveError::WorkerDied { rank: 0 });
        }
        crate::seq::solve_seq(grid, params);
        return Ok(());
    }

    // Build the neighbour links: worker i exchanges rows with i+1. Each
    // direction recycles one owned n-element buffer for the whole solve.
    let n = grid.n();
    let mut links: Vec<Links> = (0..p).map(|_| Links::default()).collect();
    for i in 0..p - 1 {
        let (tx_down, rx_down) = recycled_link(n); // i -> i+1
        let (tx_up, rx_up) = recycled_link(n); // i+1 -> i
        links[i].to_down = Some(tx_down);
        links[i].from_down = Some(rx_up);
        links[i + 1].to_up = Some(tx_up);
        links[i + 1].from_up = Some(rx_down);
    }

    let mut workers: Vec<Worker> = strips.iter().map(|s| Worker::new(grid, s)).collect();

    let ends: Vec<(usize, std::thread::Result<WorkerEnd>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (worker, mut link)) in workers.iter_mut().zip(links).enumerate() {
            let policy = options.policy;
            let kill = options.kill;
            handles.push(
                scope.spawn(move || worker_loop(rank, p, worker, &mut link, params, &policy, kill)),
            );
        }
        // Joining here (rather than letting the scope do it) converts a
        // worker's panic into an inspectable result instead of a
        // propagated re-panic.
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| (rank, h.join()))
            .collect()
    });
    resolve(ends)?;

    // Assemble the solution.
    for (worker, strip) in workers.iter().zip(strips) {
        let owned = worker.owned_rows();
        for (k, r) in strip.rows.clone().enumerate() {
            grid.set_row(r, &owned[k * grid.n()..(k + 1) * grid.n()]);
        }
    }
    Ok(())
}

/// Solves in parallel over the given strips, updating `grid` in place.
///
/// Runs the fallible core under [`SolveOptions::reliable`]: a wedged
/// neighbour is waited out near-indefinitely, so on a healthy run this
/// behaves exactly like the original blocking driver.
///
/// # Panics
///
/// Panics if any strip is empty (decompose with `n >> p`), if strips do
/// not tile the interior, on invalid `omega`, or if a worker dies — use
/// [`try_solve_parallel_strips`] to handle death as a typed error.
pub fn solve_parallel_strips(grid: &mut Grid, params: SorParams, strips: &[Strip]) {
    try_solve_parallel_strips(grid, params, strips, &SolveOptions::reliable())
        .unwrap_or_else(|e| panic!("parallel solve failed: {e}"));
}

/// Solves with an equal strip decomposition over `p` workers.
pub fn solve_parallel(grid: &mut Grid, params: SorParams, p: usize) {
    assert!(p > 0, "need at least one worker");
    let strips = partition_equal(grid.n() - 2, p);
    solve_parallel_strips(grid, params, &strips);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::partition_rows;
    use crate::seq::solve_seq;

    fn solved_seq(n: usize, iters: usize) -> Grid {
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, iters));
        g
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for p in [2, 3, 4] {
            let n = 33;
            let iters = 30;
            let reference = solved_seq(n, iters);
            let mut g = Grid::laplace_problem(n);
            solve_parallel(&mut g, SorParams::for_grid(n, iters), p);
            assert_eq!(
                g.max_diff(&reference),
                0.0,
                "p={p}: parallel differs from sequential"
            );
        }
    }

    #[test]
    fn weighted_strips_also_match() {
        let n = 25;
        let iters = 20;
        let reference = solved_seq(n, iters);
        let strips = partition_rows(n - 2, &[3.0, 1.0, 2.0]);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_strips(&mut g, SorParams::for_grid(n, iters), &strips);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn single_worker_delegates_to_sequential() {
        let n = 17;
        let reference = solved_seq(n, 10);
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, 10), 1);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn converges_in_parallel() {
        let n = 33;
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, 400), 4);
        assert!(g.max_residual() < 1e-9, "residual {}", g.max_residual());
    }

    #[test]
    fn many_workers_small_grid() {
        // 8 workers on 10 interior rows: some strips have 1 row.
        let n = 12;
        let iters = 15;
        let reference = solved_seq(n, iters);
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, iters), 8);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_strip() {
        // 2 interior rows across 3 workers -> an empty strip.
        let mut g = Grid::laplace_problem(4);
        solve_parallel(&mut g, SorParams::for_grid(4, 1), 3);
    }

    fn kill_options(rank: usize, at_half_iteration: usize) -> SolveOptions {
        SolveOptions {
            policy: ExchangePolicy {
                timeout: std::time::Duration::from_millis(200),
                retries: 1,
            },
            kill: Some(WorkerDeath {
                rank,
                at_half_iteration,
            }),
        }
    }

    #[test]
    fn fallible_solve_without_faults_matches_sequential() {
        let n = 25;
        let iters = 20;
        let reference = solved_seq(n, iters);
        let mut g = Grid::laplace_problem(n);
        let strips = partition_equal(n - 2, 4);
        try_solve_parallel_strips(
            &mut g,
            SorParams::for_grid(n, iters),
            &strips,
            &SolveOptions::default(),
        )
        .unwrap();
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn killed_worker_returns_typed_error_and_leaves_grid_untouched() {
        // Interior ranks, edge ranks, and the very first half-iteration.
        for (rank, half) in [(1, 5), (0, 0), (3, 9), (2, 1)] {
            let n = 21;
            let initial = Grid::laplace_problem(n);
            let mut g = initial.clone();
            let strips = partition_equal(n - 2, 4);
            let err = try_solve_parallel_strips(
                &mut g,
                SorParams::for_grid(n, 10),
                &strips,
                &kill_options(rank, half),
            )
            .unwrap_err();
            assert_eq!(err, SolveError::WorkerDied { rank }, "kill rank {rank}");
            assert_eq!(g.max_diff(&initial), 0.0, "grid must stay untouched");
        }
    }

    #[test]
    fn death_after_last_half_iteration_never_fires() {
        let n = 17;
        let iters = 8;
        let reference = solved_seq(n, iters);
        let mut g = Grid::laplace_problem(n);
        let strips = partition_equal(n - 2, 3);
        // Half-iterations run 0..2*iters; 2*iters is past the end.
        try_solve_parallel_strips(
            &mut g,
            SorParams::for_grid(n, iters),
            &strips,
            &kill_options(1, 2 * iters),
        )
        .unwrap();
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn death_of_out_of_range_rank_is_ignored() {
        let n = 17;
        let mut g = Grid::laplace_problem(n);
        let strips = partition_equal(n - 2, 3);
        try_solve_parallel_strips(
            &mut g,
            SorParams::for_grid(n, 5),
            &strips,
            &kill_options(99, 0),
        )
        .unwrap();
    }

    #[test]
    fn single_worker_death_is_still_reported() {
        let n = 17;
        let initial = Grid::laplace_problem(n);
        let mut g = initial.clone();
        let strips = partition_equal(n - 2, 1);
        let err = try_solve_parallel_strips(
            &mut g,
            SorParams::for_grid(n, 5),
            &strips,
            &kill_options(0, 3),
        )
        .unwrap_err();
        assert_eq!(err, SolveError::WorkerDied { rank: 0 });
        assert_eq!(g.max_diff(&initial), 0.0);
    }
}
