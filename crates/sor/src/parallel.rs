//! The real multithreaded Red-Black SOR: strip decomposition, per-phase
//! ghost-row exchange over rendezvous mailboxes, loose neighbour
//! synchronization — a shared-nothing implementation of the distributed
//! algorithm the paper models, validated bit-for-bit against the
//! sequential solver.
//!
//! Because each colour's update reads only the *other* colour (fixed for
//! the duration of the sweep), the parallel result is identical to the
//! sequential one — floating-point operation order per cell does not
//! change with the decomposition.
//!
//! Ghost rows travel through [`crate::exchange`] links that recycle their
//! owned buffers (send the buffer, get it back), so steady-state
//! iterations perform **zero heap allocations** — see the `zero_alloc`
//! integration test.

use crate::decomp::{partition_equal, Strip};
use crate::exchange::{recycled_link, RecycledReceiver, RecycledSender};
use crate::grid::{Color, Grid};
use crate::kernel::relax_rows;
use crate::seq::SorParams;

/// A worker's local state: its strip rows plus two ghost rows.
struct Worker {
    /// Global index of the first owned row.
    global_start: usize,
    /// Number of owned rows.
    rows: usize,
    /// Grid dimension.
    n: usize,
    /// Local data: `(rows + 2) x n`, row 0 = upper ghost, row rows+1 =
    /// lower ghost.
    data: Vec<f64>,
}

impl Worker {
    fn new(grid: &Grid, strip: &Strip) -> Self {
        let n = grid.n();
        let rows = strip.n_rows();
        let mut data = Vec::with_capacity((rows + 2) * n);
        // Upper ghost = row above the strip (boundary or neighbour row).
        data.extend_from_slice(grid.row(strip.rows.start - 1));
        for r in strip.rows.clone() {
            data.extend_from_slice(grid.row(r));
        }
        data.extend_from_slice(grid.row(strip.rows.end));
        Self {
            global_start: strip.rows.start,
            rows,
            n,
            data,
        }
    }

    /// Relaxes the given colour over all owned rows via the shared slice
    /// kernel. Local row `l` is global row `global_start + l - 1`.
    fn sweep(&mut self, color: Color, omega: f64) {
        relax_rows(
            &mut self.data,
            self.n,
            color.parity(),
            omega,
            1,
            self.rows + 1,
            self.global_start - 1,
        );
    }

    fn copy_top_row(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.data[self.n..2 * self.n]);
    }

    fn copy_bottom_row(&self, out: &mut [f64]) {
        let l = self.rows;
        out.copy_from_slice(&self.data[l * self.n..(l + 1) * self.n]);
    }

    fn set_upper_ghost(&mut self, row: &[f64]) {
        self.data[..self.n].copy_from_slice(row);
    }

    fn set_lower_ghost(&mut self, row: &[f64]) {
        let l = self.rows + 1;
        self.data[l * self.n..(l + 1) * self.n].copy_from_slice(row);
    }

    fn owned_rows(&self) -> &[f64] {
        &self.data[self.n..(self.rows + 1) * self.n]
    }
}

/// Mailbox bundle for one worker's neighbour links.
#[derive(Default)]
struct Links {
    to_up: Option<RecycledSender>,
    from_up: Option<RecycledReceiver>,
    to_down: Option<RecycledSender>,
    from_down: Option<RecycledReceiver>,
}

/// Solves in parallel over the given strips, updating `grid` in place.
///
/// # Panics
///
/// Panics if any strip is empty (decompose with `n >> p`), if strips do
/// not tile the interior, or on invalid `omega`.
pub fn solve_parallel_strips(grid: &mut Grid, params: SorParams, strips: &[Strip]) {
    assert!(
        params.omega > 0.0 && params.omega < 2.0,
        "omega must lie in (0,2)"
    );
    assert!(
        crate::decomp::strips_are_valid(strips, grid.n() - 2),
        "strips must tile the interior rows"
    );
    assert!(
        strips.iter().all(|s| s.n_rows() > 0),
        "every processor needs at least one row"
    );
    let p = strips.len();
    if p == 1 {
        crate::seq::solve_seq(grid, params);
        return;
    }

    // Build the neighbour links: worker i exchanges rows with i+1. Each
    // direction recycles one owned n-element buffer for the whole solve.
    let n = grid.n();
    let mut links: Vec<Links> = (0..p).map(|_| Links::default()).collect();
    for i in 0..p - 1 {
        let (tx_down, rx_down) = recycled_link(n); // i -> i+1
        let (tx_up, rx_up) = recycled_link(n); // i+1 -> i
        links[i].to_down = Some(tx_down);
        links[i].from_down = Some(rx_up);
        links[i + 1].to_up = Some(tx_up);
        links[i + 1].from_up = Some(rx_down);
    }

    let mut workers: Vec<Worker> = strips.iter().map(|s| Worker::new(grid, s)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (worker, mut link) in workers.iter_mut().zip(links) {
            handles.push(scope.spawn(move || {
                for _ in 0..params.iterations {
                    for color in [Color::Red, Color::Black] {
                        worker.sweep(color, params.omega);
                        // Send boundary rows, then receive fresh ghosts.
                        if let Some(tx) = &mut link.to_up {
                            tx.send_with(|buf| worker.copy_top_row(buf));
                        }
                        if let Some(tx) = &mut link.to_down {
                            tx.send_with(|buf| worker.copy_bottom_row(buf));
                        }
                        if let Some(rx) = &link.from_up {
                            rx.recv_with(|row| worker.set_upper_ghost(row));
                        }
                        if let Some(rx) = &link.from_down {
                            rx.recv_with(|row| worker.set_lower_ghost(row));
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    // Assemble the solution.
    for (worker, strip) in workers.iter().zip(strips) {
        let owned = worker.owned_rows();
        for (k, r) in strip.rows.clone().enumerate() {
            grid.set_row(r, &owned[k * grid.n()..(k + 1) * grid.n()]);
        }
    }
}

/// Solves with an equal strip decomposition over `p` workers.
pub fn solve_parallel(grid: &mut Grid, params: SorParams, p: usize) {
    assert!(p > 0, "need at least one worker");
    let strips = partition_equal(grid.n() - 2, p);
    solve_parallel_strips(grid, params, &strips);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::partition_rows;
    use crate::seq::solve_seq;

    fn solved_seq(n: usize, iters: usize) -> Grid {
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, iters));
        g
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for p in [2, 3, 4] {
            let n = 33;
            let iters = 30;
            let reference = solved_seq(n, iters);
            let mut g = Grid::laplace_problem(n);
            solve_parallel(&mut g, SorParams::for_grid(n, iters), p);
            assert_eq!(
                g.max_diff(&reference),
                0.0,
                "p={p}: parallel differs from sequential"
            );
        }
    }

    #[test]
    fn weighted_strips_also_match() {
        let n = 25;
        let iters = 20;
        let reference = solved_seq(n, iters);
        let strips = partition_rows(n - 2, &[3.0, 1.0, 2.0]);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_strips(&mut g, SorParams::for_grid(n, iters), &strips);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn single_worker_delegates_to_sequential() {
        let n = 17;
        let reference = solved_seq(n, 10);
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, 10), 1);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn converges_in_parallel() {
        let n = 33;
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, 400), 4);
        assert!(g.max_residual() < 1e-9, "residual {}", g.max_residual());
    }

    #[test]
    fn many_workers_small_grid() {
        // 8 workers on 10 interior rows: some strips have 1 row.
        let n = 12;
        let iters = 15;
        let reference = solved_seq(n, iters);
        let mut g = Grid::laplace_problem(n);
        solve_parallel(&mut g, SorParams::for_grid(n, iters), 8);
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_strip() {
        // 2 interior rows across 3 workers -> an empty strip.
        let mut g = Grid::laplace_problem(4);
        solve_parallel(&mut g, SorParams::for_grid(4, 1), 3);
    }
}
