//! Real multithreaded Red-Black SOR over a 2D block decomposition:
//! four-neighbour ghost-edge exchange over channels, validated bit-for-bit
//! against the sequential solver (the five-point stencil needs no corner
//! ghosts, and each colour reads only the other, so decomposition cannot
//! change the floating-point result).

use crate::decomp2d::{partition_blocks, Block, BlockLayout};
use crate::grid::{Color, Grid};
use crate::seq::SorParams;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Edge payloads exchanged between block neighbours.
enum Edge {
    Row(Vec<f64>),
    Col(Vec<f64>),
}

/// A worker's local state: its block plus a one-cell halo on all sides.
struct BlockWorker {
    rows: usize,
    cols: usize,
    row0: usize,
    col0: usize,
    /// `(rows + 2) x (cols + 2)`, halo included.
    data: Vec<f64>,
}

impl BlockWorker {
    fn new(grid: &Grid, block: &Block) -> Self {
        let rows = block.n_rows();
        let cols = block.n_cols();
        let w = cols + 2;
        let mut data = Vec::with_capacity((rows + 2) * w);
        for gi in (block.rows.start - 1)..=(block.rows.end) {
            for gj in (block.cols.start - 1)..=(block.cols.end) {
                data.push(grid.get(gi, gj));
            }
        }
        Self {
            rows,
            cols,
            row0: block.rows.start,
            col0: block.cols.start,
            data,
        }
    }

    #[inline]
    fn idx(&self, li: usize, lj: usize) -> usize {
        li * (self.cols + 2) + lj
    }

    fn sweep(&mut self, color: Color, omega: f64) {
        for li in 1..=self.rows {
            let gi = self.row0 + li - 1;
            for lj in 1..=self.cols {
                let gj = self.col0 + lj - 1;
                if (gi + gj) % 2 != color.parity() {
                    continue;
                }
                let c = self.idx(li, lj);
                let u = self.data[c];
                let sum = self.data[self.idx(li - 1, lj)]
                    + self.data[self.idx(li + 1, lj)]
                    + self.data[self.idx(li, lj - 1)]
                    + self.data[self.idx(li, lj + 1)];
                self.data[c] = u + omega * 0.25 * (sum - 4.0 * u);
            }
        }
    }

    fn top_row(&self) -> Vec<f64> {
        (1..=self.cols).map(|j| self.data[self.idx(1, j)]).collect()
    }
    fn bottom_row(&self) -> Vec<f64> {
        (1..=self.cols)
            .map(|j| self.data[self.idx(self.rows, j)])
            .collect()
    }
    fn left_col(&self) -> Vec<f64> {
        (1..=self.rows).map(|i| self.data[self.idx(i, 1)]).collect()
    }
    fn right_col(&self) -> Vec<f64> {
        (1..=self.rows)
            .map(|i| self.data[self.idx(i, self.cols)])
            .collect()
    }
    fn set_top_halo(&mut self, row: &[f64]) {
        for (j, &v) in row.iter().enumerate() {
            let idx = self.idx(0, j + 1);
            self.data[idx] = v;
        }
    }
    fn set_bottom_halo(&mut self, row: &[f64]) {
        for (j, &v) in row.iter().enumerate() {
            let idx = self.idx(self.rows + 1, j + 1);
            self.data[idx] = v;
        }
    }
    fn set_left_halo(&mut self, col: &[f64]) {
        for (i, &v) in col.iter().enumerate() {
            let idx = self.idx(i + 1, 0);
            self.data[idx] = v;
        }
    }
    fn set_right_halo(&mut self, col: &[f64]) {
        for (i, &v) in col.iter().enumerate() {
            let idx = self.idx(i + 1, self.cols + 1);
            self.data[idx] = v;
        }
    }
}

/// Channels to/from the four neighbours.
#[derive(Default)]
struct BlockLinks {
    to_up: Option<Sender<Edge>>,
    from_up: Option<Receiver<Edge>>,
    to_down: Option<Sender<Edge>>,
    from_down: Option<Receiver<Edge>>,
    to_left: Option<Sender<Edge>>,
    from_left: Option<Receiver<Edge>>,
    to_right: Option<Sender<Edge>>,
    from_right: Option<Receiver<Edge>>,
}

/// Solves in parallel over a 2D block decomposition, updating `grid` in
/// place. Bit-for-bit equal to [`crate::seq::solve_seq`].
///
/// # Panics
///
/// Panics on invalid `omega` or a layout finer than the interior.
pub fn solve_parallel_blocks(grid: &mut Grid, params: SorParams, layout: BlockLayout) {
    assert!(
        params.omega > 0.0 && params.omega < 2.0,
        "omega must lie in (0,2)"
    );
    if layout.len() == 1 {
        crate::seq::solve_seq(grid, params);
        return;
    }
    let blocks = partition_blocks(grid.n(), layout);
    assert!(blocks.iter().all(|b| b.elements() > 0));

    let mut links: Vec<BlockLinks> = (0..layout.len()).map(|_| BlockLinks::default()).collect();
    // Vertical links.
    for br in 0..layout.pr.saturating_sub(1) {
        for bc in 0..layout.pc {
            let a = br * layout.pc + bc;
            let b = (br + 1) * layout.pc + bc;
            let (tx_down, rx_down) = unbounded();
            let (tx_up, rx_up) = unbounded();
            links[a].to_down = Some(tx_down);
            links[a].from_down = Some(rx_up);
            links[b].to_up = Some(tx_up);
            links[b].from_up = Some(rx_down);
        }
    }
    // Horizontal links.
    for br in 0..layout.pr {
        for bc in 0..layout.pc.saturating_sub(1) {
            let a = br * layout.pc + bc;
            let b = br * layout.pc + bc + 1;
            let (tx_right, rx_right) = unbounded();
            let (tx_left, rx_left) = unbounded();
            links[a].to_right = Some(tx_right);
            links[a].from_right = Some(rx_left);
            links[b].to_left = Some(tx_left);
            links[b].from_left = Some(rx_right);
        }
    }

    let mut workers: Vec<BlockWorker> = blocks.iter().map(|b| BlockWorker::new(grid, b)).collect();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(layout.len());
        for (worker, link) in workers.iter_mut().zip(links) {
            handles.push(scope.spawn(move |_| {
                for _ in 0..params.iterations {
                    for color in [Color::Red, Color::Black] {
                        worker.sweep(color, params.omega);
                        if let Some(tx) = &link.to_up {
                            tx.send(Edge::Row(worker.top_row())).expect("send up");
                        }
                        if let Some(tx) = &link.to_down {
                            tx.send(Edge::Row(worker.bottom_row())).expect("send down");
                        }
                        if let Some(tx) = &link.to_left {
                            tx.send(Edge::Col(worker.left_col())).expect("send left");
                        }
                        if let Some(tx) = &link.to_right {
                            tx.send(Edge::Col(worker.right_col())).expect("send right");
                        }
                        if let Some(rx) = &link.from_up {
                            match rx.recv().expect("recv up") {
                                Edge::Row(r) => worker.set_top_halo(&r),
                                Edge::Col(_) => unreachable!("vertical link carries rows"),
                            }
                        }
                        if let Some(rx) = &link.from_down {
                            match rx.recv().expect("recv down") {
                                Edge::Row(r) => worker.set_bottom_halo(&r),
                                Edge::Col(_) => unreachable!("vertical link carries rows"),
                            }
                        }
                        if let Some(rx) = &link.from_left {
                            match rx.recv().expect("recv left") {
                                Edge::Col(c) => worker.set_left_halo(&c),
                                Edge::Row(_) => unreachable!("horizontal link carries cols"),
                            }
                        }
                        if let Some(rx) = &link.from_right {
                            match rx.recv().expect("recv right") {
                                Edge::Col(c) => worker.set_right_halo(&c),
                                Edge::Row(_) => unreachable!("horizontal link carries cols"),
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    })
    .expect("scope failed");

    // Assemble.
    for (worker, block) in workers.iter().zip(&blocks) {
        for (li, gi) in block.rows.clone().enumerate() {
            for (lj, gj) in block.cols.clone().enumerate() {
                grid.set(gi, gj, worker.data[worker.idx(li + 1, lj + 1)]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::solve_seq;

    fn reference(n: usize, iters: usize) -> Grid {
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, iters));
        g
    }

    #[test]
    fn blocks_match_sequential_bitwise() {
        for (pr, pc) in [(2, 2), (1, 3), (3, 1), (2, 3), (3, 3)] {
            let n = 26;
            let iters = 15;
            let reference = reference(n, iters);
            let mut g = Grid::laplace_problem(n);
            solve_parallel_blocks(&mut g, SorParams::for_grid(n, iters), BlockLayout::new(pr, pc));
            assert_eq!(
                g.max_diff(&reference),
                0.0,
                "layout {pr}x{pc} differs from sequential"
            );
        }
    }

    #[test]
    fn single_block_delegates() {
        let n = 15;
        let reference = reference(n, 8);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(&mut g, SorParams::for_grid(n, 8), BlockLayout::new(1, 1));
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn converges_with_blocks() {
        let n = 33;
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(&mut g, SorParams::for_grid(n, 400), BlockLayout::new(2, 2));
        assert!(g.max_residual() < 1e-9, "residual {}", g.max_residual());
    }

    #[test]
    fn uneven_blocks_still_match() {
        // Interior 11 split 3x2: ragged blocks.
        let n = 13;
        let iters = 10;
        let reference = reference(n, iters);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(&mut g, SorParams::for_grid(n, iters), BlockLayout::new(3, 2));
        assert_eq!(g.max_diff(&reference), 0.0);
    }
}
