//! Real multithreaded Red-Black SOR over a 2D block decomposition:
//! four-neighbour ghost-edge exchange over recycled-buffer mailboxes,
//! validated bit-for-bit against the sequential solver (the five-point
//! stencil needs no corner ghosts, and each colour reads only the other,
//! so decomposition cannot change the floating-point result).
//!
//! Each direction is its own typed link, so the old `Edge` row/column
//! wrapper enum is gone; edges ride the same zero-allocation recycling
//! protocol as [`crate::parallel`] (see [`crate::exchange`]) — and the
//! same fault contract: [`try_solve_parallel_blocks`] bounds every
//! exchange and turns a dead worker into
//! [`SolveError::WorkerDied`].

use crate::decomp2d::{partition_blocks, Block, BlockLayout};
use crate::exchange::{recycled_link, ExchangePolicy, RecycledReceiver, RecycledSender};
use crate::grid::{Color, Grid};
use crate::kernel::{color_start, relax_row};
use crate::parallel::{death_fires, end_of, resolve, SolveError, SolveOptions, WorkerEnd};
use crate::seq::SorParams;
use prodpred_simgrid::faults::WorkerDeath;

/// A worker's local state: its block plus a one-cell halo on all sides.
struct BlockWorker {
    rows: usize,
    cols: usize,
    row0: usize,
    col0: usize,
    /// `(rows + 2) x (cols + 2)`, halo included.
    data: Vec<f64>,
}

impl BlockWorker {
    fn new(grid: &Grid, block: &Block) -> Self {
        let rows = block.n_rows();
        let cols = block.n_cols();
        let w = cols + 2;
        let mut data = Vec::with_capacity((rows + 2) * w);
        for gi in (block.rows.start - 1)..=(block.rows.end) {
            for gj in (block.cols.start - 1)..=(block.cols.end) {
                data.push(grid.get(gi, gj));
            }
        }
        Self {
            rows,
            cols,
            row0: block.rows.start,
            col0: block.cols.start,
            data,
        }
    }

    #[inline]
    fn idx(&self, li: usize, lj: usize) -> usize {
        li * (self.cols + 2) + lj
    }

    /// Relaxes the given colour over the owned block via the shared slice
    /// kernel, one local row at a time.
    fn sweep(&mut self, color: Color, omega: f64) {
        let w = self.cols + 2;
        for li in 1..=self.rows {
            let gi = self.row0 + li - 1;
            // Local column 1 sits at global column `col0`.
            let start = color_start(color.parity(), gi, self.col0);
            let (head, rest) = self.data.split_at_mut(li * w);
            let (current, tail) = rest.split_at_mut(w);
            relax_row(&head[(li - 1) * w..], current, &tail[..w], omega, start);
        }
    }

    fn copy_top_row(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.data[self.idx(1, 1)..self.idx(1, self.cols + 1)]);
    }
    fn copy_bottom_row(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.data[self.idx(self.rows, 1)..self.idx(self.rows, self.cols + 1)]);
    }
    fn copy_left_col(&self, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[self.idx(i + 1, 1)];
        }
    }
    fn copy_right_col(&self, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[self.idx(i + 1, self.cols)];
        }
    }
    fn set_top_halo(&mut self, row: &[f64]) {
        let lo = self.idx(0, 1);
        self.data[lo..lo + self.cols].copy_from_slice(row);
    }
    fn set_bottom_halo(&mut self, row: &[f64]) {
        let lo = self.idx(self.rows + 1, 1);
        self.data[lo..lo + self.cols].copy_from_slice(row);
    }
    fn set_left_halo(&mut self, col: &[f64]) {
        for (i, &v) in col.iter().enumerate() {
            let idx = self.idx(i + 1, 0);
            self.data[idx] = v;
        }
    }
    fn set_right_halo(&mut self, col: &[f64]) {
        for (i, &v) in col.iter().enumerate() {
            let idx = self.idx(i + 1, self.cols + 1);
            self.data[idx] = v;
        }
    }
}

/// Recycled-buffer links to/from the four neighbours.
#[derive(Default)]
struct BlockLinks {
    to_up: Option<RecycledSender>,
    from_up: Option<RecycledReceiver>,
    to_down: Option<RecycledSender>,
    from_down: Option<RecycledReceiver>,
    to_left: Option<RecycledSender>,
    from_left: Option<RecycledReceiver>,
    to_right: Option<RecycledSender>,
    from_right: Option<RecycledReceiver>,
}

/// One block worker's full run: sweep, then exchange all four boundary
/// edges, every half-iteration. `pc` is the layout's column count, used
/// to name the vertical neighbours.
fn block_worker_loop(
    rank: usize,
    pc: usize,
    worker: &mut BlockWorker,
    link: &mut BlockLinks,
    params: SorParams,
    policy: &ExchangePolicy,
    kill: Option<WorkerDeath>,
) -> WorkerEnd {
    let mut half = 0usize;
    for _ in 0..params.iterations {
        for color in [Color::Red, Color::Black] {
            if death_fires(kill, rank, half) {
                return WorkerEnd::Died;
            }
            worker.sweep(color, params.omega);
            if let Some(tx) = &mut link.to_up {
                if let Err(e) = tx.try_send_with(policy, |buf| worker.copy_top_row(buf)) {
                    return end_of(e, rank - pc);
                }
            }
            if let Some(tx) = &mut link.to_down {
                if let Err(e) = tx.try_send_with(policy, |buf| worker.copy_bottom_row(buf)) {
                    return end_of(e, rank + pc);
                }
            }
            if let Some(tx) = &mut link.to_left {
                if let Err(e) = tx.try_send_with(policy, |buf| worker.copy_left_col(buf)) {
                    return end_of(e, rank - 1);
                }
            }
            if let Some(tx) = &mut link.to_right {
                if let Err(e) = tx.try_send_with(policy, |buf| worker.copy_right_col(buf)) {
                    return end_of(e, rank + 1);
                }
            }
            if let Some(rx) = &link.from_up {
                if let Err(e) = rx.try_recv_with(policy, |row| worker.set_top_halo(row)) {
                    return end_of(e, rank - pc);
                }
            }
            if let Some(rx) = &link.from_down {
                if let Err(e) = rx.try_recv_with(policy, |row| worker.set_bottom_halo(row)) {
                    return end_of(e, rank + pc);
                }
            }
            if let Some(rx) = &link.from_left {
                if let Err(e) = rx.try_recv_with(policy, |col| worker.set_left_halo(col)) {
                    return end_of(e, rank - 1);
                }
            }
            if let Some(rx) = &link.from_right {
                if let Err(e) = rx.try_recv_with(policy, |col| worker.set_right_halo(col)) {
                    return end_of(e, rank + 1);
                }
            }
            half += 1;
        }
    }
    WorkerEnd::Completed
}

/// Fallible core of the block solver — the 2D analogue of
/// [`crate::parallel::try_solve_parallel_strips`]: bounded exchanges, a
/// dead worker (panic or injected [`WorkerDeath`], rank = block index in
/// row-major layout order) surfaces as [`SolveError::WorkerDied`], and on
/// any error the grid is left in its initial state.
///
/// # Panics
///
/// Panics on invalid `omega` or a layout finer than the interior —
/// configuration errors, not runtime faults.
///
/// # Errors
///
/// Returns [`SolveError::WorkerDied`] when a worker panics, an injected
/// death fires, or a neighbour exchange disconnects or exhausts its
/// timeout budget.
pub fn try_solve_parallel_blocks(
    grid: &mut Grid,
    params: SorParams,
    layout: BlockLayout,
    options: &SolveOptions,
) -> Result<(), SolveError> {
    assert!(
        params.omega > 0.0 && params.omega < 2.0,
        "omega must lie in (0,2)"
    );
    if layout.len() == 1 {
        if options
            .kill
            .is_some_and(|d| d.rank == 0 && d.at_half_iteration < 2 * params.iterations)
        {
            return Err(SolveError::WorkerDied { rank: 0 });
        }
        crate::seq::solve_seq(grid, params);
        return Ok(());
    }
    let blocks = partition_blocks(grid.n(), layout);
    assert!(blocks.iter().all(|b| b.elements() > 0));

    let mut links: Vec<BlockLinks> = (0..layout.len()).map(|_| BlockLinks::default()).collect();
    // Vertical links carry rows of the downstream block's width.
    for br in 0..layout.pr.saturating_sub(1) {
        for bc in 0..layout.pc {
            let a = br * layout.pc + bc;
            let b = (br + 1) * layout.pc + bc;
            let cols = blocks[a].n_cols();
            debug_assert_eq!(cols, blocks[b].n_cols());
            let (tx_down, rx_down) = recycled_link(cols);
            let (tx_up, rx_up) = recycled_link(cols);
            links[a].to_down = Some(tx_down);
            links[a].from_down = Some(rx_up);
            links[b].to_up = Some(tx_up);
            links[b].from_up = Some(rx_down);
        }
    }
    // Horizontal links carry columns of the blocks' height.
    for br in 0..layout.pr {
        for bc in 0..layout.pc.saturating_sub(1) {
            let a = br * layout.pc + bc;
            let b = br * layout.pc + bc + 1;
            let rows = blocks[a].n_rows();
            debug_assert_eq!(rows, blocks[b].n_rows());
            let (tx_right, rx_right) = recycled_link(rows);
            let (tx_left, rx_left) = recycled_link(rows);
            links[a].to_right = Some(tx_right);
            links[a].from_right = Some(rx_left);
            links[b].to_left = Some(tx_left);
            links[b].from_left = Some(rx_right);
        }
    }

    let mut workers: Vec<BlockWorker> = blocks.iter().map(|b| BlockWorker::new(grid, b)).collect();

    let ends: Vec<(usize, std::thread::Result<WorkerEnd>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(layout.len());
        for (rank, (worker, mut link)) in workers.iter_mut().zip(links).enumerate() {
            let policy = options.policy;
            let kill = options.kill;
            let pc = layout.pc;
            handles.push(scope.spawn(move || {
                block_worker_loop(rank, pc, worker, &mut link, params, &policy, kill)
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| (rank, h.join()))
            .collect()
    });
    resolve(ends)?;

    // Assemble.
    for (worker, block) in workers.iter().zip(&blocks) {
        for (li, gi) in block.rows.clone().enumerate() {
            for (lj, gj) in block.cols.clone().enumerate() {
                grid.set(gi, gj, worker.data[worker.idx(li + 1, lj + 1)]);
            }
        }
    }
    Ok(())
}

/// Solves in parallel over a 2D block decomposition, updating `grid` in
/// place. Bit-for-bit equal to [`crate::seq::solve_seq`]. Runs the
/// fallible core under [`SolveOptions::reliable`].
///
/// # Panics
///
/// Panics on invalid `omega`, a layout finer than the interior, or if a
/// worker dies — use [`try_solve_parallel_blocks`] to handle death as a
/// typed error.
pub fn solve_parallel_blocks(grid: &mut Grid, params: SorParams, layout: BlockLayout) {
    try_solve_parallel_blocks(grid, params, layout, &SolveOptions::reliable())
        .unwrap_or_else(|e| panic!("parallel block solve failed: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::solve_seq;

    fn reference(n: usize, iters: usize) -> Grid {
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, iters));
        g
    }

    #[test]
    fn blocks_match_sequential_bitwise() {
        for (pr, pc) in [(2, 2), (1, 3), (3, 1), (2, 3), (3, 3)] {
            let n = 26;
            let iters = 15;
            let reference = reference(n, iters);
            let mut g = Grid::laplace_problem(n);
            solve_parallel_blocks(
                &mut g,
                SorParams::for_grid(n, iters),
                BlockLayout::new(pr, pc),
            );
            assert_eq!(
                g.max_diff(&reference),
                0.0,
                "layout {pr}x{pc} differs from sequential"
            );
        }
    }

    #[test]
    fn single_block_delegates() {
        let n = 15;
        let reference = reference(n, 8);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(&mut g, SorParams::for_grid(n, 8), BlockLayout::new(1, 1));
        assert_eq!(g.max_diff(&reference), 0.0);
    }

    #[test]
    fn converges_with_blocks() {
        let n = 33;
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(&mut g, SorParams::for_grid(n, 400), BlockLayout::new(2, 2));
        assert!(g.max_residual() < 1e-9, "residual {}", g.max_residual());
    }

    #[test]
    fn killed_block_worker_returns_typed_error() {
        // Corner, edge, and interior blocks of a 3x3 layout.
        for (rank, half) in [(0, 0), (4, 3), (8, 7), (5, 2)] {
            let n = 26;
            let initial = Grid::laplace_problem(n);
            let mut g = initial.clone();
            let options = SolveOptions {
                policy: ExchangePolicy {
                    timeout: std::time::Duration::from_millis(200),
                    retries: 1,
                },
                kill: Some(WorkerDeath {
                    rank,
                    at_half_iteration: half,
                }),
            };
            let err = try_solve_parallel_blocks(
                &mut g,
                SorParams::for_grid(n, 10),
                BlockLayout::new(3, 3),
                &options,
            )
            .unwrap_err();
            assert_eq!(err, SolveError::WorkerDied { rank }, "kill rank {rank}");
            assert_eq!(g.max_diff(&initial), 0.0, "grid must stay untouched");
        }
    }

    #[test]
    fn fallible_block_solve_without_faults_matches_sequential() {
        let n = 22;
        let iters = 12;
        let want = reference(n, iters);
        let mut g = Grid::laplace_problem(n);
        try_solve_parallel_blocks(
            &mut g,
            SorParams::for_grid(n, iters),
            BlockLayout::new(2, 3),
            &SolveOptions::default(),
        )
        .unwrap();
        assert_eq!(g.max_diff(&want), 0.0);
    }

    #[test]
    fn uneven_blocks_still_match() {
        // Interior 11 split 3x2: ragged blocks.
        let n = 13;
        let iters = 10;
        let reference = reference(n, iters);
        let mut g = Grid::laplace_problem(n);
        solve_parallel_blocks(
            &mut g,
            SorParams::for_grid(n, iters),
            BlockLayout::new(3, 2),
        );
        assert_eq!(g.max_diff(&reference), 0.0);
    }
}
