//! The ghost-exchange protocol as data: the exact per-half-iteration
//! sequence of mailbox operations every strip worker performs, extracted
//! from the solver so that (a) [`crate::parallel`]'s worker loop *executes*
//! this script rather than open-coding it, and (b) the bounded model
//! checker in `prodpred-analysis` can *exhaustively verify* the very same
//! ordering for deadlock freedom, lost messages, and double delivery —
//! covering every interleaving the chaos campaign only samples.
//!
//! The protocol is the classic "push then pull" phase structure: each
//! half-iteration a worker first ships its boundary rows to every live
//! neighbour, then drains every neighbour's boundary row into its ghosts.
//! Sends precede receives unconditionally; within each group the *up*
//! neighbour comes first. Any reordering here changes the blocking
//! structure the deadlock-freedom argument (and the model checker's
//! proof) rests on, which is exactly why the order lives in one place.

/// A neighbour of a strip worker in the 1-D chain decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Peer {
    /// The worker owning the strip above (`rank - 1`).
    Up,
    /// The worker owning the strip below (`rank + 1`).
    Down,
}

impl Peer {
    /// The neighbouring rank this peer denotes for `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` and `self` is [`Peer::Up`] — edge workers
    /// have no upper neighbour, and the script never names one.
    pub fn rank_of(self, rank: usize) -> usize {
        match self {
            Peer::Up => rank - 1,
            Peer::Down => rank + 1,
        }
    }
}

/// One mailbox operation of the ghost-exchange phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeOp {
    /// Ship this worker's boundary row toward `Peer` (top row goes Up,
    /// bottom row goes Down) through the recycled link: reclaim the
    /// in-flight buffer, fill it, deposit it in the data mailbox.
    Send(Peer),
    /// Drain the boundary row arriving from `Peer` into the matching
    /// ghost row, returning the buffer through the reverse mailbox.
    Recv(Peer),
}

/// The exchange script one worker runs every half-iteration, in execution
/// order: send up, send down, receive up, receive down, with the ops
/// toward non-existent neighbours (chain edges) omitted.
///
/// `rank` must be `< ranks`. A single-worker decomposition exchanges
/// nothing and gets an empty script.
pub fn half_iteration_script(rank: usize, ranks: usize) -> Vec<ExchangeOp> {
    assert!(rank < ranks, "rank {rank} outside decomposition of {ranks}");
    let mut script = Vec::with_capacity(4);
    let has_up = rank > 0;
    let has_down = rank + 1 < ranks;
    if has_up {
        script.push(ExchangeOp::Send(Peer::Up));
    }
    if has_down {
        script.push(ExchangeOp::Send(Peer::Down));
    }
    if has_up {
        script.push(ExchangeOp::Recv(Peer::Up));
    }
    if has_down {
        script.push(ExchangeOp::Recv(Peer::Down));
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExchangeOp::{Recv, Send};
    use Peer::{Down, Up};

    #[test]
    fn interior_worker_talks_both_ways_sends_first() {
        assert_eq!(
            half_iteration_script(1, 3),
            vec![Send(Up), Send(Down), Recv(Up), Recv(Down)]
        );
    }

    #[test]
    fn edge_workers_skip_the_missing_neighbour() {
        assert_eq!(half_iteration_script(0, 2), vec![Send(Down), Recv(Down)]);
        assert_eq!(half_iteration_script(1, 2), vec![Send(Up), Recv(Up)]);
    }

    #[test]
    fn single_worker_exchanges_nothing() {
        assert!(half_iteration_script(0, 1).is_empty());
    }

    #[test]
    fn peer_rank_arithmetic() {
        assert_eq!(Up.rank_of(2), 1);
        assert_eq!(Down.rank_of(2), 3);
    }
}
