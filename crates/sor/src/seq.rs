//! The sequential Red-Black SOR solver — the reference implementation the
//! parallel solver is validated against.

use crate::grid::{optimal_omega, Color, Grid};
use serde::{Deserialize, Serialize};

/// Solver parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SorParams {
    /// Relaxation factor in `(0, 2)`.
    pub omega: f64,
    /// Number of red+black iterations to run ("this repeats for a
    /// predefined number of iterations" — the paper's SOR runs a fixed
    /// count, not to convergence).
    pub iterations: usize,
}

impl SorParams {
    /// Optimal-omega parameters for an `n x n` grid.
    pub fn for_grid(n: usize, iterations: usize) -> Self {
        Self {
            omega: optimal_omega(n),
            iterations,
        }
    }
}

/// Relaxes every interior cell of `color` within rows `[row_lo, row_hi)`.
///
/// The update is the classic five-point SOR step for Laplace's equation:
/// `u += omega/4 * (sum of 4 neighbours - 4u)`, performed row-by-row by
/// the shared slice kernel [`crate::kernel::relax_rows`].
pub fn sweep_color_rows(grid: &mut Grid, color: Color, omega: f64, row_lo: usize, row_hi: usize) {
    let n = grid.n();
    debug_assert!(row_lo >= 1 && row_hi < n);
    crate::kernel::relax_rows(grid.data_mut(), n, color.parity(), omega, row_lo, row_hi, 0);
}

/// One full red+black iteration over the whole interior, with the two
/// colour sweeps fused into a single streaming pass: red on row `i`,
/// then black on row `i - 1`, which by then has every red neighbour it
/// needs (rows `i - 2 ..= i`).
///
/// Bit-for-bit identical to a full red sweep followed by a full black
/// sweep — red cells still read only pre-iteration black values, black
/// cells only post-red values. The fusion halves memory traffic per
/// iteration, which pays off when the sweep is DRAM-bandwidth-bound;
/// where it is not, the row-alternating access pattern can lose to the
/// plain two-pass sweep (the `sor-kernel-2048` criterion bench compares
/// both), so the solvers default to two-pass and this stays available
/// as a measured alternative.
pub fn sweep_iteration(grid: &mut Grid, omega: f64) {
    let n = grid.n();
    let red = Color::Red.parity();
    let black = Color::Black.parity();
    let data = grid.data_mut();
    crate::kernel::relax_rows(data, n, red, omega, 1, 2, 0);
    for i in 2..n - 1 {
        crate::kernel::relax_rows(data, n, red, omega, i, i + 1, 0);
        crate::kernel::relax_rows(data, n, black, omega, i - 1, i, 0);
    }
    crate::kernel::relax_rows(data, n, black, omega, n - 2, n - 1, 0);
}

/// Runs red-black iterations until the residual drops below `tol` or
/// `max_iterations` is reached — the convergence-driven mode a production
/// solver exposes alongside the paper's fixed-count mode. Returns the
/// number of iterations performed and the final residual.
///
/// # Panics
///
/// Panics on invalid `omega`, non-positive `tol`, or zero
/// `max_iterations`.
pub fn solve_until(grid: &mut Grid, omega: f64, tol: f64, max_iterations: usize) -> (usize, f64) {
    assert!(omega > 0.0 && omega < 2.0, "omega must lie in (0,2)");
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(max_iterations > 0, "need at least one iteration");
    let n = grid.n();
    let mut residual = f64::INFINITY;
    for it in 1..=max_iterations {
        sweep_color_rows(grid, Color::Red, omega, 1, n - 1);
        sweep_color_rows(grid, Color::Black, omega, 1, n - 1);
        residual = grid.max_residual();
        if residual < tol {
            return (it, residual);
        }
    }
    (max_iterations, residual)
}

/// Runs `params.iterations` red-black iterations sequentially.
/// Returns the residual after each iteration.
pub fn solve_seq(grid: &mut Grid, params: SorParams) -> Vec<f64> {
    assert!(
        params.omega > 0.0 && params.omega < 2.0,
        "omega must lie in (0,2): {}",
        params.omega
    );
    let n = grid.n();
    let mut residuals = Vec::with_capacity(params.iterations);
    for _ in 0..params.iterations {
        sweep_color_rows(grid, Color::Red, params.omega, 1, n - 1);
        sweep_color_rows(grid, Color::Black, params.omega, 1, n - 1);
        residuals.push(grid.max_residual());
    }
    residuals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_iteration_matches_two_pass_bitwise() {
        for n in [3, 4, 9, 34] {
            let mut fused = Grid::laplace_problem(n);
            let mut two_pass = Grid::laplace_problem(n);
            let omega = optimal_omega(n);
            for _ in 0..25 {
                sweep_iteration(&mut fused, omega);
                sweep_color_rows(&mut two_pass, Color::Red, omega, 1, n - 1);
                sweep_color_rows(&mut two_pass, Color::Black, omega, 1, n - 1);
            }
            assert_eq!(
                fused.max_diff(&two_pass),
                0.0,
                "n={n}: fusion changed results"
            );
        }
    }

    #[test]
    fn residuals_decrease_monotonically_enough() {
        let mut g = Grid::laplace_problem(33);
        let res = solve_seq(&mut g, SorParams::for_grid(33, 60));
        assert!(res[59] < res[0] * 1e-3, "no convergence: {:?}", &res[..3]);
        // Broad monotone trend (SOR residuals can wiggle early).
        assert!(res[59] <= res[20]);
    }

    #[test]
    fn converges_to_harmonic_solution() {
        let mut g = Grid::laplace_problem(17);
        solve_seq(&mut g, SorParams::for_grid(17, 500));
        assert!(g.max_residual() < 1e-10, "residual {}", g.max_residual());
        // Maximum principle: interior values strictly between boundary
        // extremes.
        for i in 1..16 {
            for j in 1..16 {
                let v = g.get(i, j);
                assert!(v > 0.0 && v < 1.0, "({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn solution_symmetric_left_right() {
        // The Laplace problem is symmetric about the vertical midline.
        let n = 17;
        let mut g = Grid::laplace_problem(n);
        solve_seq(&mut g, SorParams::for_grid(n, 500));
        for i in 1..n - 1 {
            for j in 1..n / 2 {
                let a = g.get(i, j);
                let b = g.get(i, n - 1 - j);
                assert!((a - b).abs() < 1e-9, "asymmetry at ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn boundary_cells_never_move() {
        let n = 9;
        let mut g = Grid::laplace_problem(n);
        let before: Vec<f64> = (0..n).map(|j| g.get(0, j)).collect();
        solve_seq(&mut g, SorParams::for_grid(n, 50));
        for (j, &b) in before.iter().enumerate() {
            assert_eq!(g.get(0, j), b);
            assert_eq!(g.get(n - 1, j), 0.0);
            assert_eq!(g.get(j, 0), 0.0);
            assert_eq!(g.get(j, n - 1), 0.0);
        }
    }

    #[test]
    fn solve_until_reaches_tolerance() {
        let n = 33;
        let mut g = Grid::laplace_problem(n);
        let (iters, residual) = solve_until(&mut g, optimal_omega(n), 1e-8, 10_000);
        assert!(residual < 1e-8);
        assert!(iters > 10 && iters < 10_000, "iters {iters}");
        // Re-solving from the converged state needs one iteration.
        let (again, _) = solve_until(&mut g, optimal_omega(n), 1e-8, 10_000);
        assert_eq!(again, 1);
    }

    #[test]
    fn solve_until_respects_iteration_cap() {
        let n = 65;
        let mut g = Grid::laplace_problem(n);
        let (iters, residual) = solve_until(&mut g, 1.0, 1e-14, 5);
        assert_eq!(iters, 5);
        assert!(residual > 1e-14);
    }

    #[test]
    fn optimal_omega_converges_in_fewer_iterations() {
        let n = 49;
        let mut fast = Grid::laplace_problem(n);
        let (it_fast, _) = solve_until(&mut fast, optimal_omega(n), 1e-8, 100_000);
        let mut slow = Grid::laplace_problem(n);
        let (it_slow, _) = solve_until(&mut slow, 1.0, 1e-8, 100_000);
        // Textbook result: optimal SOR needs far fewer iterations than
        // Gauss-Seidel (omega = 1).
        assert!(
            it_fast * 4 < it_slow,
            "optimal {it_fast} vs gauss-seidel {it_slow}"
        );
    }

    #[test]
    fn omega_one_is_gauss_seidel_and_slower() {
        let n = 33;
        let iters = 40;
        let mut fast = Grid::laplace_problem(n);
        let rf = solve_seq(&mut fast, SorParams::for_grid(n, iters));
        let mut slow = Grid::laplace_problem(n);
        let rs = solve_seq(
            &mut slow,
            SorParams {
                omega: 1.0,
                iterations: iters,
            },
        );
        assert!(
            rf[iters - 1] < rs[iters - 1],
            "optimal omega should converge faster: {} vs {}",
            rf[iters - 1],
            rs[iters - 1]
        );
    }

    #[test]
    fn sweep_only_touches_requested_color() {
        let n = 7;
        let mut g = Grid::laplace_problem(n);
        let before = g.clone();
        sweep_color_rows(&mut g, Color::Red, 1.5, 1, n - 1);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                if (i + j) % 2 == 1 {
                    assert_eq!(g.get(i, j), before.get(i, j), "black cell ({i},{j}) moved");
                }
            }
        }
    }

    #[test]
    fn sweep_row_range_is_respected() {
        let n = 9;
        let mut g = Grid::laplace_problem(n);
        let before = g.clone();
        sweep_color_rows(&mut g, Color::Red, 1.5, 3, 5);
        for i in (1..3).chain(5..n - 1) {
            for j in 0..n {
                assert_eq!(g.get(i, j), before.get(i, j), "row {i} moved");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_omega_out_of_range() {
        let mut g = Grid::new(5);
        solve_seq(
            &mut g,
            SorParams {
                omega: 2.0,
                iterations: 1,
            },
        );
    }
}
