//! Property-based tests for the SOR crate: partition conservation, solver
//! equivalence, and simulation monotonicity.

use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{
    partition_equal, partition_rows, simulate, solve_parallel_strips, solve_seq, DistSorConfig,
    Grid, SorParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---- decomposition ----

    #[test]
    fn partition_conserves_rows(n_interior in 1usize..5000, weights in proptest::collection::vec(0.01f64..100.0, 1..12)) {
        let strips = partition_rows(n_interior, &weights);
        prop_assert_eq!(strips.len(), weights.len());
        let total: usize = strips.iter().map(|s| s.n_rows()).sum();
        prop_assert_eq!(total, n_interior);
        // Contiguity and order.
        let mut expected = 1usize;
        for (i, s) in strips.iter().enumerate() {
            prop_assert_eq!(s.proc, i);
            prop_assert_eq!(s.rows.start, expected);
            expected = s.rows.end;
        }
    }

    #[test]
    fn partition_roughly_proportional(n_interior in 100usize..5000, w in 1.0f64..20.0) {
        // Two machines with ratio w: the share should track w/(w+1).
        let strips = partition_rows(n_interior, &[w, 1.0]);
        let share = strips[0].n_rows() as f64 / n_interior as f64;
        let expect = w / (w + 1.0);
        prop_assert!((share - expect).abs() < 2.0 / n_interior as f64 + 1e-9);
    }

    #[test]
    fn equal_partition_is_balanced(n_interior in 1usize..2000, p in 1usize..16) {
        let strips = partition_equal(n_interior, p);
        let sizes: Vec<usize> = strips.iter().map(|s| s.n_rows()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "{sizes:?}");
    }

    // ---- solver equivalence ----

    #[test]
    fn parallel_bitwise_equals_sequential(n in 8usize..40, p in 2usize..5, iters in 1usize..12) {
        prop_assume!(n - 2 >= p);
        let params = SorParams::for_grid(n, iters);
        let mut seq = Grid::laplace_problem(n);
        solve_seq(&mut seq, params);
        let mut par = Grid::laplace_problem(n);
        solve_parallel_strips(&mut par, params, &partition_equal(n - 2, p));
        prop_assert_eq!(par.max_diff(&seq), 0.0);
    }

    #[test]
    fn residual_never_worse_after_more_iterations(n in 8usize..32, iters in 2usize..20) {
        let mut g = Grid::laplace_problem(n);
        let res = solve_seq(&mut g, SorParams::for_grid(n, iters));
        // Compare first and last thirds (per-step wiggle allowed).
        prop_assert!(res[iters - 1] <= res[0] + 1e-12);
    }

    // ---- simulated distributed execution ----

    #[test]
    fn distsim_time_positive_and_monotone_in_iterations(seed in 0u64..200, n in 100usize..800, it in 1usize..10) {
        let platform = Platform::platform1(seed, 20_000.0);
        let strips = partition_equal(n - 2, 4.min(n - 2));
        let short = simulate(&platform, &strips, DistSorConfig::new(n, it, 100.0));
        let long = simulate(&platform, &strips, DistSorConfig::new(n, it + 1, 100.0));
        prop_assert!(short.total_secs > 0.0);
        prop_assert!(long.total_secs > short.total_secs);
        prop_assert_eq!(short.iteration_secs.len(), it);
    }

    #[test]
    fn distsim_deterministic(seed in 0u64..100) {
        let platform = Platform::platform2(seed, 10_000.0);
        let strips = partition_equal(398, 4);
        let a = simulate(&platform, &strips, DistSorConfig::new(400, 5, 50.0));
        let b = simulate(&platform, &strips, DistSorConfig::new(400, 5, 50.0));
        prop_assert_eq!(a.total_secs, b.total_secs);
    }

    #[test]
    fn bigger_problems_take_longer(seed in 0u64..50) {
        let platform = Platform::dedicated(
            &[MachineClass::Sparc10, MachineClass::Sparc10],
            1.0e4,
        );
        let small = simulate(
            &platform,
            &partition_equal(398, 2),
            DistSorConfig::new(400, 5, 0.0),
        );
        let big = simulate(
            &platform,
            &partition_equal(798, 2),
            DistSorConfig::new(800, 5, 0.0),
        );
        prop_assert!(big.total_secs > small.total_secs);
        let _ = seed;
    }
}
