//! Pins down the zero-allocation guarantee of the ghost exchange: once
//! the recycled buffers exist, extra solver iterations must not touch the
//! heap. A counting global allocator measures two solves that differ only
//! in iteration count; per-iteration allocations would scale the delta by
//! the extra ghost-row phases (hundreds of events), so the assertion has
//! a wide margin against incidental noise (thread spawn bookkeeping etc.).

use std::alloc::{GlobalAlloc, Layout, System};
// tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
use std::sync::atomic::{AtomicUsize, Ordering};

use prodpred_sor::{solve_parallel, Grid, SorParams};

struct CountingAlloc;

// tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> usize {
    // tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    // tidy:allow(PP010): counting allocator — a monotone test-only tally, no cross-thread protocol
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

fn solve(n: usize, p: usize, iters: usize) {
    let mut g = Grid::laplace_problem(n);
    solve_parallel(&mut g, SorParams::for_grid(n, iters), p);
}

#[test]
fn ghost_exchange_steady_state_allocates_nothing() {
    let n = 65;
    let p = 4;
    // Warm up thread-local and lazy-init allocations (panic hooks, TLS).
    solve(n, p, 2);

    let base = allocations_during(|| solve(n, p, 4));
    let long = allocations_during(|| solve(n, p, 64));

    // 60 extra iterations x 2 colours x 6 inter-strip links would cost
    // >= 720 allocations if each ghost-row send allocated (the old
    // behaviour: a fresh Vec per boundary row per phase, plus a channel
    // node per send). Recycled buffers make the counts identical up to
    // scheduler noise.
    let delta = long.saturating_sub(base);
    assert!(
        delta < 64,
        "per-iteration allocations detected: {base} allocs at 4 iters, \
         {long} at 64 iters (delta {delta})"
    );
}
