//! Prediction-accuracy metrics (paper Section 3).
//!
//! The paper evaluates stochastic predictions three ways:
//!
//! 1. **Coverage** — the fraction of actual execution times falling inside
//!    the predicted interval ("we capture approximately 80% of the actual
//!    execution times within the range of stochastic predictions").
//! 2. **Out-of-range error** (footnote 6) — for values outside the range,
//!    the minimum distance to the interval ("a maximum error of
//!    approximately 14%").
//! 3. **Mean-point error** — the conventional baseline: relative error of
//!    the interval's mean against the actual value ("a maximum error of
//!    38.6%").

use crate::value::StochasticValue;
use serde::{Deserialize, Serialize};

/// One prediction/outcome pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Observation {
    /// The stochastic prediction issued before the run.
    pub predicted: StochasticValue,
    /// The measured outcome.
    pub actual: f64,
}

/// Aggregate accuracy report over a series of observations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Number of observations.
    pub n: usize,
    /// Fraction of actuals inside their predicted interval.
    pub coverage: f64,
    /// Maximum footnote-6 relative error (0 when everything is covered).
    pub max_range_error: f64,
    /// Mean footnote-6 relative error.
    pub mean_range_error: f64,
    /// Maximum relative error of the interval mean vs. the actual.
    pub max_mean_error: f64,
    /// Mean relative error of the interval mean vs. the actual.
    pub mean_mean_error: f64,
}

impl AccuracyReport {
    /// Computes the report. Returns `None` for an empty series.
    pub fn from_observations(obs: &[Observation]) -> Option<Self> {
        if obs.is_empty() {
            return None;
        }
        let mut covered = 0usize;
        let mut max_range = 0.0f64;
        let mut sum_range = 0.0f64;
        let mut max_mean = 0.0f64;
        let mut sum_mean = 0.0f64;
        for o in obs {
            if o.predicted.contains(o.actual) {
                covered += 1;
            }
            let r = o.predicted.relative_error_outside(o.actual);
            max_range = max_range.max(r);
            sum_range += r;
            // tidy:allow(PP004): exact zero guard before dividing by the actual
            let m = if o.actual != 0.0 {
                (o.predicted.mean() - o.actual).abs() / o.actual.abs()
            } else {
                f64::INFINITY
            };
            max_mean = max_mean.max(m);
            sum_mean += m;
        }
        let n = obs.len();
        Some(Self {
            n,
            coverage: covered as f64 / n as f64,
            max_range_error: max_range,
            mean_range_error: sum_range / n as f64,
            max_mean_error: max_mean,
            mean_mean_error: sum_mean / n as f64,
        })
    }

    /// The paper's headline comparison: the stochastic range error should be
    /// substantially smaller than the point (mean) error.
    pub fn stochastic_beats_point(&self) -> bool {
        self.max_range_error < self.max_mean_error
    }
}

/// Calibration curve: empirical coverage as the prediction intervals are
/// widened (or narrowed) by each factor. A perfectly calibrated predictor
/// crosses its nominal ~95% at factor 1.0; crossing well below 1.0 means
/// the intervals are conservative, above 1.0 means overconfident.
pub fn calibration_curve(obs: &[Observation], factors: &[f64]) -> Vec<(f64, f64)> {
    factors
        .iter()
        .map(|&f| {
            let covered = obs
                .iter()
                .filter(|o| o.predicted.widen(f).contains(o.actual))
                .count();
            let frac = if obs.is_empty() {
                0.0
            } else {
                covered as f64 / obs.len() as f64
            };
            (f, frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(mean: f64, half: f64, actual: f64) -> Observation {
        Observation {
            predicted: StochasticValue::new(mean, half),
            actual,
        }
    }

    #[test]
    fn full_coverage_zero_range_error() {
        let series = [
            obs(10.0, 2.0, 9.0),
            obs(10.0, 2.0, 11.5),
            obs(10.0, 2.0, 10.0),
        ];
        let r = AccuracyReport::from_observations(&series).unwrap();
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.max_range_error, 0.0);
        assert!(r.max_mean_error > 0.0); // means still differ from actuals
    }

    #[test]
    fn partial_coverage_and_errors() {
        let series = [
            obs(10.0, 1.0, 10.5), // inside
            obs(10.0, 1.0, 12.0), // outside by 1 -> 1/12
            obs(10.0, 1.0, 8.0),  // outside by 1 -> 1/8
            obs(10.0, 1.0, 9.5),  // inside
        ];
        let r = AccuracyReport::from_observations(&series).unwrap();
        assert!((r.coverage - 0.5).abs() < 1e-12);
        assert!((r.max_range_error - 0.125).abs() < 1e-12);
        assert!((r.mean_range_error - (1.0 / 12.0 + 0.125) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn point_baseline_error() {
        let series = [obs(10.0, 5.0, 14.0)];
        let r = AccuracyReport::from_observations(&series).unwrap();
        // Inside the wide interval: range error zero; mean error 4/14.
        assert_eq!(r.max_range_error, 0.0);
        assert!((r.max_mean_error - 4.0 / 14.0).abs() < 1e-12);
        assert!(r.stochastic_beats_point());
    }

    #[test]
    fn empty_series_is_none() {
        assert!(AccuracyReport::from_observations(&[]).is_none());
    }

    #[test]
    fn calibration_curve_is_monotone_and_saturates() {
        let series = [
            obs(10.0, 1.0, 10.5),
            obs(10.0, 1.0, 12.0),
            obs(10.0, 1.0, 8.5),
            obs(10.0, 1.0, 15.0),
        ];
        let curve = calibration_curve(&series, &[0.5, 1.0, 2.0, 5.0, 10.0]);
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "{curve:?}");
        }
        assert_eq!(curve[4].1, 1.0); // wide enough covers everything
        assert_eq!(curve[1].1, 0.25); // factor 1 covers only 10.5
    }

    #[test]
    fn calibration_curve_exact_values() {
        let series = [
            obs(10.0, 1.0, 10.5), // inside at factor 1
            obs(10.0, 1.0, 12.0), // needs factor 2
            obs(10.0, 1.0, 15.0), // needs factor 5
        ];
        let curve = calibration_curve(&series, &[1.0, 2.0, 5.0]);
        assert!((curve[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((curve[1].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[2].1 - 1.0).abs() < 1e-12);
        assert!(calibration_curve(&[], &[1.0])[0].1 == 0.0);
    }
}
