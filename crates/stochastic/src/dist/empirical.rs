//! The empirical distribution of a measured sample — the "actual" curves
//! the paper plots against fitted normals in Figures 1–4.

use super::{uniform01, Distribution};
use crate::stats::{quantile_sorted, Summary};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The empirical distribution of a finite sample.
///
/// * `cdf` is the step ECDF,
/// * `pdf` is a normalized-histogram density (bin count chosen by the
///   Freedman–Diaconis-like `sqrt(n)` rule unless overridden),
/// * `sample` bootstraps (draws uniformly from the observations).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Empirical {
    sorted: Vec<f64>,
    summary: Summary,
}

impl Empirical {
    /// Builds the empirical distribution of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains non-finite values.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "empirical distribution needs data");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "empirical data must be finite"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let summary = Summary::from_slice(data);
        Self { sorted, summary }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The observations, sorted ascending.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Streaming summary of the sample.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Sample median.
    pub fn median(&self) -> f64 {
        quantile_sorted(&self.sorted, 0.5)
    }

    /// Fraction of observations inside the closed interval `[lo, hi]`.
    pub fn fraction_within(&self, lo: f64, hi: f64) -> f64 {
        let a = self.sorted.partition_point(|&x| x < lo);
        let b = self.sorted.partition_point(|&x| x <= hi);
        (b - a) as f64 / self.sorted.len() as f64
    }
}

impl Distribution for Empirical {
    /// Histogram density with `ceil(sqrt(n))` bins over the sample range.
    fn pdf(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let lo = self.sorted[0];
        let hi = self.sorted[n - 1];
        if hi <= lo {
            // Degenerate sample: point mass.
            return if x == lo { f64::INFINITY } else { 0.0 };
        }
        if x < lo || x > hi {
            return 0.0;
        }
        let bins = (n as f64).sqrt().ceil() as usize;
        let w = (hi - lo) / bins as f64;
        let idx = (((x - lo) / w) as usize).min(bins - 1);
        let (a, b) = (lo + idx as f64 * w, lo + (idx + 1) as f64 * w);
        let count =
            self.sorted.partition_point(|&v| v <= b) - self.sorted.partition_point(|&v| v < a);
        count as f64 / (n as f64 * w)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
        quantile_sorted(&self.sorted, p)
    }

    fn mean(&self) -> f64 {
        self.summary.mean()
    }

    fn variance(&self) -> f64 {
        self.summary.variance()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let i = (uniform01(rng) * self.sorted.len() as f64) as usize;
        self.sorted[i.min(self.sorted.len() - 1)]
    }
}

/// Kolmogorov–Smirnov statistic between a sample and a reference
/// distribution: `sup_x |F_n(x) - F(x)|`. Used to judge how well a fitted
/// normal summarizes measured data (the paper's "in many cases assuming the
/// distribution is normal is satisfactory").
pub fn ks_statistic(sample: &Empirical, reference: &dyn Distribution) -> f64 {
    let n = sample.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sample.sorted().iter().enumerate() {
        let f = reference.cdf(x);
        let ecdf_hi = (i + 1) as f64 / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((ecdf_hi - f).abs()).max((f - ecdf_lo).abs());
    }
    d
}

/// Anderson–Darling statistic of a sample against a reference
/// distribution: `A² = -n - (1/n) Σ (2i-1)[ln F(x_i) + ln(1-F(x_{n+1-i}))]`.
///
/// Weighted toward the tails, where the KS statistic is weakest — exactly
/// where the paper's long-tailed data misbehaves (§2.1.1). CDF values are
/// clamped away from 0/1 so a reference with bounded support cannot
/// produce infinities.
pub fn anderson_darling(sample: &Empirical, reference: &dyn Distribution) -> f64 {
    let xs = sample.sorted();
    let n = xs.len();
    let nf = n as f64;
    const EPS: f64 = 1e-12;
    let mut s = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f_lo = reference.cdf(x).clamp(EPS, 1.0 - EPS);
        let f_hi = reference.cdf(xs[n - 1 - i]).clamp(EPS, 1.0 - EPS);
        s += (2.0 * i as f64 + 1.0) * (f_lo.ln() + (1.0 - f_hi).ln());
    }
    -nf - s / nf
}

/// The Anderson–Darling normality check with estimated parameters (the
/// "case 3" adjustment `A*² = A²(1 + 0.75/n + 2.25/n²)`). Returns the
/// adjusted statistic and whether normality is rejected at the 5% level
/// (critical value 0.752). `None` for fewer than 8 observations.
pub fn ad_normality(data: &[f64]) -> Option<(f64, bool)> {
    if data.len() < 8 {
        return None;
    }
    let s = crate::stats::Summary::from_slice(data);
    // tidy:allow(PP004): degenerate-sample guard; sd is exactly 0 for constant data
    if s.sd() == 0.0 {
        return None;
    }
    let emp = Empirical::new(data);
    let normal = crate::dist::Normal::new(s.mean(), s.sd());
    let n = data.len() as f64;
    let a2 = anderson_darling(&emp, &normal);
    let adjusted = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));
    Some((adjusted, adjusted > 0.752))
}

/// Approximate p-value for the one-sample KS test (asymptotic Kolmogorov
/// distribution; adequate for n ≳ 35).
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    let en = (n as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    // Kolmogorov Q function: 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2)
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64 * lambda).powi(2)).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ecdf_steps() {
        let e = Empirical::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(9.0), 1.0);
    }

    #[test]
    fn fraction_within_inclusive() {
        let e = Empirical::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.fraction_within(2.0, 4.0) - 0.6).abs() < 1e-12);
        assert!((e.fraction_within(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert_eq!(e.fraction_within(6.0, 7.0), 0.0);
    }

    #[test]
    fn median_and_quantile() {
        let e = Empirical::new(&[5.0, 1.0, 3.0]);
        assert_eq!(e.median(), 3.0);
        assert_eq!(e.quantile(0.5), 3.0);
    }

    #[test]
    fn pdf_density_integrates_roughly_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = Normal::new(0.0, 1.0);
        let e = Empirical::new(&n.sample_n(&mut rng, 4000));
        // Trapezoid over the sample range.
        let (lo, hi) = (e.sorted()[0], *e.sorted().last().unwrap());
        let steps = 2000;
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            integral += e.pdf(lo + (i as f64 + 0.5) * h) * h;
        }
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn bootstrap_sampling_stays_in_support() {
        let data = [2.0, 4.0, 8.0];
        let e = Empirical::new(&data);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!(data.contains(&x));
        }
    }

    #[test]
    fn ks_accepts_matching_normal() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = Normal::new(10.0, 2.0);
        let e = Empirical::new(&n.sample_n(&mut rng, 2000));
        let d = ks_statistic(&e, &n);
        let p = ks_p_value(d, e.len());
        assert!(p > 0.01, "true model rejected: d={d}, p={p}");
    }

    #[test]
    fn ks_rejects_wrong_normal() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = Normal::new(10.0, 2.0);
        let e = Empirical::new(&n.sample_n(&mut rng, 2000));
        let wrong = Normal::new(11.5, 2.0);
        let d = ks_statistic(&e, &wrong);
        let p = ks_p_value(d, e.len());
        assert!(p < 1e-6, "wrong model accepted: d={d}, p={p}");
    }

    #[test]
    fn anderson_darling_accepts_true_model() {
        let mut rng = StdRng::seed_from_u64(31);
        let data = Normal::new(3.0, 1.5).sample_n(&mut rng, 1500);
        let (a2, reject) = ad_normality(&data).unwrap();
        assert!(!reject, "true normal rejected: A*2 = {a2}");
        assert!(a2 < 0.752);
    }

    #[test]
    fn anderson_darling_rejects_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(32);
        let data = crate::dist::LogNormal::new(0.0, 0.8).sample_n(&mut rng, 1500);
        let (a2, reject) = ad_normality(&data).unwrap();
        assert!(reject, "lognormal accepted as normal: A*2 = {a2}");
    }

    #[test]
    fn anderson_darling_more_sensitive_than_ks_in_tails() {
        // A distribution that matches the normal in the bulk but has a
        // modest tail: AD should flag it even when KS barely moves.
        let mut rng = StdRng::seed_from_u64(33);
        let body = Normal::new(0.0, 1.0);
        let tail = Normal::new(5.0, 0.5);
        let mut data = body.sample_n(&mut rng, 1900);
        data.extend(tail.sample_n(&mut rng, 40)); // 2% tail
        let (a2, reject) = ad_normality(&data).unwrap();
        assert!(reject, "tail contamination accepted: A*2 = {a2}");
    }

    #[test]
    fn anderson_darling_handles_reference_support_bounds() {
        // Empirical values outside a truncated reference's support must
        // not produce infinities.
        let e = Empirical::new(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        let reference = crate::dist::TruncatedNormal::new(0.0, 1.0, -1.0, 1.0);
        let a2 = anderson_darling(&e, &reference);
        assert!(a2.is_finite());
        assert!(a2 > 0.0);
    }

    #[test]
    fn ad_normality_degenerate_inputs() {
        assert!(ad_normality(&[1.0; 5]).is_none());
        assert!(ad_normality(&[2.0; 100]).is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_empty_sample() {
        Empirical::new(&[]);
    }
}
