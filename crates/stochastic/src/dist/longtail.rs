//! Long-tailed distributions (paper Section 2.1.1).
//!
//! "It is often the case that characteristic system data has a threshold
//! value, and that performance varies monotonically from that point in a
//! long-tailed fashion, with the median several points below the threshold."
//!
//! The concrete example is shared-ethernet bandwidth (Figure 3): values
//! cluster just below the achievable peak with a long tail toward low
//! bandwidth under contention. We model the tail with a lognormal and allow
//! it to extend either *below* a threshold (bandwidth) or *above* one
//! (latency, runtimes).

use super::normal::sample_std_normal;
use super::Distribution;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Lognormal distribution: `ln X ~ N(mu, sigma^2)`, support `(0, inf)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or a parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite());
        assert!(sigma > 0.0, "lognormal sigma must be positive");
        Self { mu, sigma }
    }

    /// Builds the lognormal with the given *distribution* mean and standard
    /// deviation (moment matching).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `sd > 0`.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Self {
        assert!(mean > 0.0 && sd > 0.0, "lognormal moments must be positive");
        let cv2 = (sd / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The distribution median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        crate::special::std_normal_pdf(z) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        crate::special::std_normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * crate::special::std_normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }
}

/// Which side of the threshold the tail extends toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TailDirection {
    /// Values cluster near the threshold and tail off toward smaller values
    /// (shared bandwidth under contention — Figure 3).
    Below,
    /// Values cluster near the threshold and tail off toward larger values
    /// (latencies, queueing delays, loaded runtimes).
    Above,
}

/// A thresholded long-tailed distribution: `threshold ± LogNormal`.
///
/// For `TailDirection::Below`, `X = threshold - Y` with `Y` lognormal, so
/// the support is `(-inf, threshold)` and the density rises toward the
/// threshold the way the paper's bandwidth histogram does. For `Above`,
/// `X = threshold + Y`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongTailed {
    threshold: f64,
    tail: LogNormal,
    direction: TailDirection,
}

impl LongTailed {
    /// Creates a long-tailed distribution from a threshold and the lognormal
    /// describing the distance from the threshold.
    pub fn new(threshold: f64, tail: LogNormal, direction: TailDirection) -> Self {
        assert!(threshold.is_finite());
        Self {
            threshold,
            tail,
            direction,
        }
    }

    /// Convenience: a bandwidth-style distribution clustered just below
    /// `peak`, with typical shortfall `typical_gap` and tail spread `gap_sd`.
    pub fn below(peak: f64, typical_gap: f64, gap_sd: f64) -> Self {
        Self::new(
            peak,
            LogNormal::from_mean_sd(typical_gap, gap_sd),
            TailDirection::Below,
        )
    }

    /// Convenience: a latency-style distribution clustered just above
    /// `floor`.
    pub fn above(floor: f64, typical_gap: f64, gap_sd: f64) -> Self {
        Self::new(
            floor,
            LogNormal::from_mean_sd(typical_gap, gap_sd),
            TailDirection::Above,
        )
    }

    /// The threshold value.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Tail direction.
    pub fn direction(&self) -> TailDirection {
        self.direction
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        match self.direction {
            TailDirection::Below => self.threshold - self.tail.median(),
            TailDirection::Above => self.threshold + self.tail.median(),
        }
    }

    fn gap_of(&self, x: f64) -> f64 {
        match self.direction {
            TailDirection::Below => self.threshold - x,
            TailDirection::Above => x - self.threshold,
        }
    }
}

impl Distribution for LongTailed {
    fn pdf(&self, x: f64) -> f64 {
        self.tail.pdf(self.gap_of(x))
    }

    fn cdf(&self, x: f64) -> f64 {
        match self.direction {
            TailDirection::Below => 1.0 - self.tail.cdf(self.gap_of(x)),
            TailDirection::Above => self.tail.cdf(self.gap_of(x)),
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        match self.direction {
            TailDirection::Below => self.threshold - self.tail.quantile(1.0 - p),
            TailDirection::Above => self.threshold + self.tail.quantile(p),
        }
    }

    fn mean(&self) -> f64 {
        match self.direction {
            TailDirection::Below => self.threshold - self.tail.mean(),
            TailDirection::Above => self.threshold + self.tail.mean(),
        }
    }

    fn variance(&self) -> f64 {
        self.tail.variance()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let gap = self.tail.sample(rng);
        match self.direction {
            TailDirection::Below => self.threshold - gap,
            TailDirection::Above => self.threshold + gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_moment_matching_round_trips() {
        let ln = LogNormal::from_mean_sd(5.0, 2.0);
        assert!((ln.mean() - 5.0).abs() < 1e-9);
        assert!((ln.variance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_median_below_mean() {
        // Right-skew: median < mean.
        let ln = LogNormal::from_mean_sd(5.0, 3.0);
        assert!(ln.median() < ln.mean());
    }

    #[test]
    fn lognormal_cdf_quantile_inverse() {
        let ln = LogNormal::new(1.0, 0.6);
        for i in 1..20 {
            let p = i as f64 / 20.0;
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn lognormal_sampling_moments() {
        let ln = LogNormal::from_mean_sd(2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = Summary::new();
        for _ in 0..40_000 {
            s.push(ln.sample(&mut rng));
        }
        assert!((s.mean() - 2.0).abs() < 0.02);
        assert!((s.sd() - 0.5).abs() < 0.02);
        assert!(s.skewness() > 0.3, "lognormal should be right-skewed");
    }

    #[test]
    fn bandwidth_style_tail_is_left_skewed() {
        // Figure 3's shape: cluster just below the peak, tail toward low bw.
        let bw = LongTailed::below(6.2, 0.95, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Summary::new();
        for _ in 0..40_000 {
            let x = bw.sample(&mut rng);
            assert!(x < 6.2);
            s.push(x);
        }
        assert!(s.skewness() < -0.3, "bandwidth tail must skew left");
        // Median sits above the mean for a left tail.
        assert!(bw.median() > bw.mean());
    }

    #[test]
    fn below_cdf_matches_quantile() {
        let d = LongTailed::below(6.0, 1.0, 0.7);
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-8, "p={p}");
        }
        // CDF is monotone increasing toward the threshold.
        assert!(d.cdf(5.9) > d.cdf(5.0));
        assert!(d.cdf(4.0) > d.cdf(2.0));
    }

    #[test]
    fn above_direction_mirrors_below() {
        let lat = LongTailed::above(1.0, 0.5, 0.4);
        assert!(lat.mean() > 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(lat.sample(&mut rng) > 1.0);
        }
    }

    #[test]
    fn normal_approximation_undercovers_long_tail() {
        // The paper's §2.1.1 point: summarizing long-tailed data as
        // mean ± 2 sd covers less than the nominal ~95% ("the normal
        // distribution is representative of 91% of the values, rather than
        // the 95% typically assumed"). The Figure-3 shape is a tight
        // cluster just below the achievable peak plus a contention tail,
        // so the two-sigma band clips a visible fraction of the tail.
        let cluster = crate::dist::Normal::new(5.7, 0.15);
        let tail = LongTailed::below(5.8, 1.8, 1.0);
        let mut rng = StdRng::seed_from_u64(21);
        let mut samples = Vec::with_capacity(50_000);
        for i in 0..50_000 {
            if i % 4 == 0 {
                samples.push(tail.sample(&mut rng));
            } else {
                samples.push(cluster.sample(&mut rng));
            }
        }
        let s = Summary::from_slice(&samples);
        let (lo, hi) = (s.mean() - 2.0 * s.sd(), s.mean() + 2.0 * s.sd());
        let inside = samples.iter().filter(|&&x| x >= lo && x <= hi).count();
        let frac = inside as f64 / samples.len() as f64;
        assert!(
            frac < 0.95 && frac > 0.80,
            "normal summary should visibly undercover a cluster+tail mix: {frac}"
        );
    }
}
