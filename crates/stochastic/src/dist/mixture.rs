//! Mixtures of normals for modal data (paper Section 2.1.2).
//!
//! "For some application or system characteristics, such as CPU load, the
//! data can be viewed as several sets of data, each having its own
//! distribution" — each set is a *mode*. A production workstation's load is
//! modeled as a weighted mixture of per-mode normals, and the paper's
//! multi-modal averaging rule `P1(M1 ± SD1) + P2(M2 ± SD2) + ...` is the
//! mixture's moment summary.

use super::{uniform01, Distribution, Normal};
use crate::value::StochasticValue;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One mode of a mixture: a normal with an occupancy weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixtureComponent {
    /// Fraction of time the data spends in this mode (`P_i`).
    pub weight: f64,
    /// The mode's distribution (`M_i ± SD_i`, stored as a normal).
    pub normal: Normal,
}

/// A finite mixture of normal modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    components: Vec<MixtureComponent>,
}

impl Mixture {
    /// Creates a mixture. Weights must be positive; they are normalized to
    /// sum to one.
    ///
    /// # Panics
    ///
    /// Panics if no component is supplied or any weight is non-positive.
    pub fn new(mut components: Vec<MixtureComponent>) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one mode");
        let total: f64 = components.iter().map(|c| c.weight).sum();
        assert!(
            components.iter().all(|c| c.weight > 0.0) && total > 0.0,
            "mixture weights must be positive"
        );
        for c in &mut components {
            c.weight /= total;
        }
        Self { components }
    }

    /// Convenience constructor from `(weight, mean, sd)` triples.
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Self {
        Self::new(
            triples
                .iter()
                .map(|&(w, m, s)| MixtureComponent {
                    weight: w,
                    normal: Normal::new(m, s),
                })
                .collect(),
        )
    }

    /// The modes, weights normalized.
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    /// Number of modes.
    pub fn n_modes(&self) -> usize {
        self.components.len()
    }

    /// The paper's Section 2.1.2 multi-modal stochastic value:
    /// `sum_i P_i * (M_i ± SD_i)`, i.e. the weighted average of the modal
    /// stochastic values using the **related** scaling/addition rules, which
    /// yields mean `sum P_i M_i` and half-width `sum P_i * 2 SD_i`.
    ///
    /// Note this is the paper's *approximation*; it is narrower than the
    /// true mixture spread when the modes are far apart (between-mode
    /// variance is not counted). Compare [`moment_summary`](Self::moment_summary).
    pub fn paper_average(&self) -> StochasticValue {
        let mean: f64 = self
            .components
            .iter()
            .map(|c| c.weight * c.normal.mu())
            .sum();
        let half: f64 = self
            .components
            .iter()
            .map(|c| c.weight * 2.0 * c.normal.sigma())
            .sum();
        StochasticValue::new(mean, half)
    }

    /// The exact moment summary of the mixture: mean and ±2σ computed from
    /// the law of total variance (includes between-mode spread).
    pub fn moment_summary(&self) -> StochasticValue {
        StochasticValue::from_mean_sd(self.mean(), self.variance().sqrt())
    }

    /// The dominant mode (largest weight).
    pub fn dominant(&self) -> &MixtureComponent {
        self.components
            .iter()
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
            .expect("mixture is non-empty") // tidy:allow(PP003): constructor rejects empty component lists
    }

    /// The index of the mode whose mean is nearest to `x` — used to decide
    /// which mode a running application currently sits in.
    pub fn nearest_mode(&self, x: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.components.iter().enumerate() {
            let d = (c.normal.mu() - x).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl Distribution for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.normal.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.normal.cdf(x))
            .sum()
    }

    /// Numeric inversion by bisection (mixture quantiles have no closed
    /// form). Accurate to ~1e-10 of the bracket width.
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
        // Bracket: widest component interval at 8 sigma.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            lo = lo.min(c.normal.mu() - 8.0 * c.normal.sigma() - 1.0);
            hi = hi.max(c.normal.mu() + 8.0 * c.normal.sigma() + 1.0);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + mid.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.normal.mu())
            .sum()
    }

    /// Law of total variance: within-mode + between-mode.
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.components
            .iter()
            .map(|c| {
                let d = c.normal.mu() - m;
                c.weight * (c.normal.variance() + d * d)
            })
            .sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(rng);
        for c in &self.components {
            if u < c.weight {
                return c.normal.sample(rng);
            }
            u -= c.weight;
        }
        // Floating-point slack: fall through to the last mode.
        self.components
            .last()
            .expect("mixture is non-empty") // tidy:allow(PP003): constructor rejects empty component lists
            .normal
            .sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's Figure-5 tri-modal load: modes at 0.94, 0.49, 0.33.
    fn figure5_mixture() -> Mixture {
        Mixture::from_triples(&[(0.35, 0.94, 0.02), (0.40, 0.49, 0.04), (0.25, 0.33, 0.02)])
    }

    #[test]
    fn weights_normalize() {
        let m = Mixture::from_triples(&[(2.0, 0.0, 1.0), (6.0, 1.0, 1.0)]);
        assert!((m.components()[0].weight - 0.25).abs() < 1e-12);
        assert!((m.components()[1].weight - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_is_weighted_average() {
        let m = figure5_mixture();
        let expect = 0.35 * 0.94 + 0.40 * 0.49 + 0.25 * 0.33;
        assert!((m.mean() - expect).abs() < 1e-12);
    }

    #[test]
    fn pdf_is_multimodal() {
        let m = figure5_mixture();
        // Each mode center is a local maximum relative to midpoints between modes.
        for &c in &[0.33, 0.49, 0.94] {
            assert!(m.pdf(c) > m.pdf(0.70), "mode at {c} should beat the valley");
        }
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let m = figure5_mixture();
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0 * 1.2;
            let c = m.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let m = figure5_mixture();
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn sampling_matches_total_moments() {
        let m = figure5_mixture();
        let mut rng = StdRng::seed_from_u64(77);
        let mut s = Summary::new();
        for _ in 0..60_000 {
            s.push(m.sample(&mut rng));
        }
        assert!((s.mean() - m.mean()).abs() < 0.01);
        assert!((s.variance() - m.variance()).abs() < 0.01);
    }

    #[test]
    fn paper_average_vs_moment_summary() {
        let m = figure5_mixture();
        let paper = m.paper_average();
        let exact = m.moment_summary();
        // Same mean,
        assert!((paper.mean() - exact.mean()).abs() < 1e-12);
        // but the paper's within-mode-only average is narrower when modes
        // are far apart (between-mode variance missing).
        assert!(paper.half_width() < exact.half_width());
    }

    #[test]
    fn dominant_and_nearest_mode() {
        let m = figure5_mixture();
        assert!((m.dominant().normal.mu() - 0.49).abs() < 1e-12);
        assert_eq!(m.nearest_mode(0.90), 0);
        assert_eq!(m.nearest_mode(0.50), 1);
        assert_eq!(m.nearest_mode(0.10), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Mixture::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_weight() {
        Mixture::from_triples(&[(0.0, 1.0, 1.0)]);
    }
}
