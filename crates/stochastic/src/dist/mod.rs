//! Distribution machinery.
//!
//! "Every stochastic value is associated with a distribution, that is, a
//! function that gives the probability associated with each value in its
//! range" (paper, Section 2.1). This module provides the families the paper
//! works with:
//!
//! * [`Normal`] — the workhorse approximation (Section 2.1),
//! * [`LogNormal`] / [`LongTailed`] — long-tailed data such as shared
//!   ethernet bandwidth (Section 2.1.1),
//! * [`Mixture`] — modal data such as production CPU load (Section 2.1.2),
//! * [`Empirical`] — raw measured samples, for ground truth comparisons.

mod empirical;
mod longtail;
mod mixture;
mod normal;
mod truncated;

pub use empirical::{ad_normality, anderson_darling, ks_p_value, ks_statistic, Empirical};
pub use longtail::{LogNormal, LongTailed, TailDirection};
pub use mixture::{Mixture, MixtureComponent};
pub use normal::Normal;
pub use truncated::TruncatedNormal;

use rand::RngCore;

/// A one-dimensional continuous distribution.
///
/// Object-safe so mixtures and fitters can work over heterogeneous
/// families; sampling draws raw 53-bit uniforms from any [`RngCore`].
pub trait Distribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// The `p`-quantile (inverse CDF). `p` must lie in `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Standard deviation.
    fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability mass on the closed interval `[lo, hi]`.
    fn mass_between(&self, lo: f64, hi: f64) -> f64 {
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }
}

/// A uniform draw in `[0, 1)` with 53 bits of precision, straight from the
/// raw generator (avoids any dependence on sized `Rng` adapters).
pub(crate) fn uniform01(rng: &mut dyn RngCore) -> f64 {
    // 2^-53
    const SCALE: f64 = 1.110_223_024_625_156_5e-16;
    (rng.next_u64() >> 11) as f64 * SCALE
}

/// A uniform draw in the open interval `(0, 1)`, for quantile-transform
/// sampling that must not hit the endpoints.
pub(crate) fn uniform01_open(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = uniform01(rng);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform01_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let u = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
            sum += u;
        }
        assert!(lo < 0.01);
        assert!(hi > 0.99);
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn mass_between_clamps_at_zero() {
        let n = Normal::new(0.0, 1.0);
        assert_eq!(n.mass_between(2.0, 1.0), 0.0);
        assert!((n.mass_between(-2.0, 2.0) - 0.9545).abs() < 1e-3);
    }
}
