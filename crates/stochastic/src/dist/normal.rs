//! The normal distribution — the family the paper uses to summarize "many
//! real phenomena" (Section 2.1) and the one closed under the linear
//! combinations that drive the arithmetic rules of Table 2.

use super::{uniform01, uniform01_open, Distribution};
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A (possibly degenerate) normal distribution `N(mu, sigma^2)`.
///
/// `sigma == 0` is allowed and models a point value: all mass at `mu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "normal mean must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "normal sigma must be finite and non-negative, got {sigma}"
        );
        Self { mu, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard-deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Whether this is the degenerate point distribution.
    pub fn is_degenerate(&self) -> bool {
        self.sigma == 0.0 // tidy:allow(PP004): degenerate distribution has exactly zero sigma
    }

    /// The linear transform `a*X + b`, exact for normals.
    pub fn affine(&self, a: f64, b: f64) -> Normal {
        Normal::new(a * self.mu + b, a.abs() * self.sigma)
    }

    /// Sum of independent normals: `N(mu1+mu2, s1^2+s2^2)` — the closure
    /// property (Larsen & Marx ch. 7.3) that Table 2's unrelated-addition
    /// rule relies on.
    pub fn convolve(&self, other: &Normal) -> Normal {
        Normal::new(
            self.mu + other.mu,
            (self.sigma * self.sigma + other.sigma * other.sigma).sqrt(),
        )
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        // tidy:allow(PP004): degenerate distribution has exactly zero sigma
        if self.sigma == 0.0 {
            return if x == self.mu { f64::INFINITY } else { 0.0 };
        }
        std_normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        // tidy:allow(PP004): degenerate distribution has exactly zero sigma
        if self.sigma == 0.0 {
            return if x >= self.mu { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        // tidy:allow(PP004): degenerate distribution has exactly zero sigma
        if self.sigma == 0.0 {
            assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
            return self.mu;
        }
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Marsaglia polar (Box–Muller variant) sampling. One of the pair is
    /// discarded to keep the trait stateless; throughput is not the concern
    /// here (Criterion confirms tens of millions of draws per second).
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // tidy:allow(PP004): degenerate distribution has exactly zero sigma
        if self.sigma == 0.0 {
            return self.mu;
        }
        loop {
            let u = 2.0 * uniform01(rng) - 1.0;
            let v = 2.0 * uniform01(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * f;
            }
        }
    }
}

/// A standard-normal draw, for callers that only need the raw variate.
pub(crate) fn sample_std_normal(rng: &mut dyn RngCore) -> f64 {
    // Quantile-transform: slower than polar but branch-free; used by the
    // lognormal sampler where correlated pair consumption matters.
    std_normal_quantile(uniform01_open(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_peak_at_mean() {
        let n = Normal::new(5.0, 2.0);
        assert!(n.pdf(5.0) > n.pdf(4.0));
        assert!(n.pdf(5.0) > n.pdf(6.0));
        assert!((n.pdf(5.0) - 0.199_471_140).abs() < 1e-6);
    }

    #[test]
    fn cdf_median_is_half() {
        let n = Normal::new(-3.0, 0.5);
        assert!((n.cdf(-3.0) - 0.5).abs() < 1e-12);
        assert!((n.quantile(0.5) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_sigma_covers_95_percent() {
        let n = Normal::new(12.0, 0.3);
        let cover = n.mass_between(12.0 - 0.6, 12.0 + 0.6);
        assert!((cover - 0.9545).abs() < 1e-3);
    }

    #[test]
    fn degenerate_point_behaviour() {
        let p = Normal::new(4.0, 0.0);
        assert!(p.is_degenerate());
        assert_eq!(p.cdf(3.999), 0.0);
        assert_eq!(p.cdf(4.0), 1.0);
        assert_eq!(p.quantile(0.37), 4.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample(&mut rng), 4.0);
        assert_eq!(p.pdf(5.0), 0.0);
    }

    #[test]
    fn affine_transform() {
        let n = Normal::new(2.0, 3.0);
        let t = n.affine(-2.0, 1.0);
        assert_eq!(t.mu(), -3.0);
        assert_eq!(t.sigma(), 6.0);
    }

    #[test]
    fn convolution_adds_variances() {
        let a = Normal::new(1.0, 3.0);
        let b = Normal::new(2.0, 4.0);
        let c = a.convolve(&b);
        assert_eq!(c.mu(), 3.0);
        assert!((c.sigma() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        let n = Normal::new(10.0, 2.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = Summary::new();
        for _ in 0..50_000 {
            s.push(n.sample(&mut rng));
        }
        assert!((s.mean() - 10.0).abs() < 0.05);
        assert!((s.sd() - 2.5).abs() < 0.05);
        // Normal has ~zero skew and excess kurtosis.
        assert!(s.skewness().abs() < 0.05);
        assert!(s.kurtosis().abs() < 0.1);
    }

    #[test]
    fn sampling_empirical_two_sigma_coverage() {
        let n = Normal::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut inside = 0u32;
        let total = 20_000;
        for _ in 0..total {
            let x = n.sample(&mut rng);
            if (-2.0..=2.0).contains(&x) {
                inside += 1;
            }
        }
        let frac = inside as f64 / total as f64;
        assert!((frac - 0.9545).abs() < 0.01, "coverage {frac}");
    }

    #[test]
    fn quantile_transform_sampler_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(sample_std_normal(&mut rng));
        }
        assert!(s.mean().abs() < 0.03);
        assert!((s.sd() - 1.0).abs() < 0.03);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_sigma() {
        Normal::new(0.0, -1.0);
    }
}
