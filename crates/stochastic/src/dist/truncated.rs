//! The truncated normal distribution.
//!
//! CPU availability lives in `(0, 1]`: summarizing a load mode as a plain
//! normal assigns probability to impossible values once the mode sits near
//! an endpoint (the paper's 0.94 top mode, for instance). The truncated
//! normal is the honest version of the same summary, and quantifies how
//! much the untruncated approximation distorts moments near a boundary.

use super::{uniform01_open, Distribution, Normal};
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A normal restricted to `[lo, hi]` and renormalized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedNormal {
    parent: Normal,
    lo: f64,
    hi: f64,
    /// `Phi(alpha)` at the lower bound (cached).
    cdf_lo: f64,
    /// `Phi(beta)` at the upper bound (cached).
    cdf_hi: f64,
}

impl TruncatedNormal {
    /// Creates a normal `N(mu, sigma^2)` truncated to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`, `sigma <= 0`, or the parent leaves
    /// (numerically) zero mass in the interval.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "truncation interval must be non-empty");
        assert!(sigma > 0.0, "truncated normal needs positive sigma");
        let parent = Normal::new(mu, sigma);
        let cdf_lo = std_normal_cdf((lo - mu) / sigma);
        let cdf_hi = std_normal_cdf((hi - mu) / sigma);
        assert!(
            cdf_hi - cdf_lo > 1e-12,
            "no probability mass in [{lo}, {hi}] for N({mu}, {sigma}^2)"
        );
        Self {
            parent,
            lo,
            hi,
            cdf_lo,
            cdf_hi,
        }
    }

    /// A load-shaped truncation to `(0, 1]` (numerically `[1e-9, 1]`).
    pub fn load(mu: f64, sigma: f64) -> Self {
        Self::new(mu, sigma, 1e-9, 1.0)
    }

    /// The untruncated parent.
    pub fn parent(&self) -> Normal {
        self.parent
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Mass the parent places inside the interval.
    pub fn retained_mass(&self) -> f64 {
        self.cdf_hi - self.cdf_lo
    }

    fn z(&self, x: f64) -> f64 {
        (x - self.parent.mu()) / self.parent.sigma()
    }
}

impl Distribution for TruncatedNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        std_normal_pdf(self.z(x)) / (self.parent.sigma() * self.retained_mass())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (std_normal_cdf(self.z(x)) - self.cdf_lo) / self.retained_mass()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
        let q = self.cdf_lo + p * self.retained_mass();
        self.parent.mu() + self.parent.sigma() * std_normal_quantile(q)
    }

    /// Closed-form truncated-normal mean:
    /// `mu + sigma * (phi(alpha) - phi(beta)) / Z`.
    fn mean(&self) -> f64 {
        let alpha = self.z(self.lo);
        let beta = self.z(self.hi);
        let zmass = self.retained_mass();
        self.parent.mu()
            + self.parent.sigma() * (std_normal_pdf(alpha) - std_normal_pdf(beta)) / zmass
    }

    /// Closed-form truncated-normal variance.
    fn variance(&self) -> f64 {
        let alpha = self.z(self.lo);
        let beta = self.z(self.hi);
        let zmass = self.retained_mass();
        let (pa, pb) = (std_normal_pdf(alpha), std_normal_pdf(beta));
        let term1 = (alpha * pa - beta * pb) / zmass;
        let term2 = (pa - pb) / zmass;
        (self.parent.sigma().powi(2) * (1.0 + term1 - term2 * term2)).max(0.0)
    }

    /// Inverse-CDF sampling (rejection would stall for tight tails).
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = uniform01_open(rng);
        self.quantile(u).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interior_truncation_barely_changes_moments() {
        // Mode 0.48 sd 0.025: bounds are 19 sigma away.
        let t = TruncatedNormal::load(0.48, 0.025);
        assert!((t.mean() - 0.48).abs() < 1e-9);
        assert!((t.variance() - 0.025f64.powi(2)).abs() < 1e-9);
        assert!((t.retained_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_mode_shifts_mean_inward() {
        // Top mode 0.94 with a fat sd 0.1: the upper bound bites.
        let t = TruncatedNormal::load(0.94, 0.1);
        assert!(t.mean() < 0.94, "mean {}", t.mean());
        assert!(t.variance() < 0.01, "variance must shrink");
    }

    #[test]
    fn pdf_zero_outside_bounds() {
        let t = TruncatedNormal::new(0.0, 1.0, -1.0, 1.0);
        assert_eq!(t.pdf(-1.5), 0.0);
        assert_eq!(t.pdf(1.5), 0.0);
        assert!(t.pdf(0.0) > Normal::standard().pdf(0.0));
    }

    #[test]
    fn cdf_endpoints_and_monotonicity() {
        let t = TruncatedNormal::new(5.0, 2.0, 4.0, 7.0);
        assert_eq!(t.cdf(3.9), 0.0);
        assert_eq!(t.cdf(7.0), 1.0);
        let mut prev = 0.0;
        for i in 0..=30 {
            let x = 4.0 + 3.0 * i as f64 / 30.0;
            let c = t.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let t = TruncatedNormal::new(0.5, 0.3, 0.0, 1.0);
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let x = t.quantile(p);
            assert!((t.cdf(x) - p).abs() < 1e-9, "p={p}");
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn sampling_matches_closed_form_moments() {
        let t = TruncatedNormal::new(0.9, 0.15, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = Summary::new();
        for _ in 0..50_000 {
            let x = t.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            s.push(x);
        }
        assert!(
            (s.mean() - t.mean()).abs() < 0.003,
            "{} vs {}",
            s.mean(),
            t.mean()
        );
        assert!((s.variance() - t.variance()).abs() < 0.001);
    }

    #[test]
    fn one_sided_truncation_skews() {
        // Cutting the upper tail leaves a left skew.
        let t = TruncatedNormal::new(1.0, 0.2, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = Summary::new();
        for _ in 0..50_000 {
            s.push(t.sample(&mut rng));
        }
        assert!(s.skewness() < -0.3, "skew {}", s.skewness());
    }

    #[test]
    #[should_panic]
    fn rejects_empty_interval() {
        TruncatedNormal::new(0.0, 1.0, 2.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_mass() {
        TruncatedNormal::new(0.0, 0.001, 50.0, 51.0);
    }
}
