//! Gaussian kernel density estimation, used by the mode detector to find
//! the peaks and valleys of load histograms like the paper's Figures 5
//! and 10.

use crate::special::std_normal_pdf;
use crate::stats::{quantile, Summary};

/// A Gaussian KDE over a fixed sample.
#[derive(Debug, Clone)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 * min(sd, IQR/1.34) * n^(-1/5)`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "KDE needs data");
        let s = Summary::from_slice(data);
        let iqr = quantile(data, 0.75).unwrap_or(0.0) - quantile(data, 0.25).unwrap_or(0.0);
        let spread = if iqr > 0.0 {
            s.sd().min(iqr / 1.34)
        } else {
            s.sd()
        };
        let bw = if spread > 0.0 {
            0.9 * spread * (data.len() as f64).powf(-0.2)
        } else {
            // Degenerate data: any positive bandwidth gives a point bump.
            1e-9_f64.max(s.mean().abs() * 1e-9)
        };
        Self::with_bandwidth(data, bw.max(f64::MIN_POSITIVE))
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `bandwidth <= 0`.
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Self {
        assert!(!data.is_empty(), "KDE needs data");
        assert!(bandwidth > 0.0, "KDE bandwidth must be positive");
        Self {
            data: data.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let sum: f64 = self
            .data
            .iter()
            .map(|&xi| std_normal_pdf((x - xi) / h))
            .sum();
        sum / (self.data.len() as f64 * h)
    }

    /// Evaluates the density on a uniform grid of `n` points over
    /// `[lo, hi]`, returning `(x, density)` pairs.
    pub fn grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && hi > lo);
        let step = (hi - lo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect()
    }

    /// Local maxima of the gridded density — candidate modes. Peaks below
    /// `min_height` times the global maximum are ignored as noise.
    pub fn peaks(&self, lo: f64, hi: f64, n: usize, min_height: f64) -> Vec<f64> {
        let g = self.grid(lo, hi, n);
        let max_d = g.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        let mut out = Vec::new();
        for w in g.windows(3) {
            let [(_, d0), (x1, d1), (_, d2)] = [w[0], w[1], w[2]];
            if d1 > d0 && d1 >= d2 && d1 >= min_height * max_d {
                out.push(x1);
            }
        }
        out
    }

    /// The minimum-density point between `a` and `b` — the valley used to
    /// split modal data.
    pub fn valley(&self, a: f64, b: f64, n: usize) -> f64 {
        assert!(b > a && n >= 2);
        let g = self.grid(a, b, n);
        g.iter()
            .min_by(|p, q| p.1.total_cmp(&q.1))
            .map_or(a, |&(x, _)| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Mixture, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_integrates_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Normal::new(0.0, 1.0).sample_n(&mut rng, 500);
        let kde = Kde::new(&data);
        let g = kde.grid(-6.0, 6.0, 1200);
        let step = 12.0 / 1199.0;
        let integral: f64 = g.iter().map(|&(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn unimodal_data_gives_one_peak() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Normal::new(5.0, 0.5).sample_n(&mut rng, 2000);
        let kde = Kde::new(&data);
        let peaks = kde.peaks(3.0, 7.0, 400, 0.2);
        assert_eq!(peaks.len(), 1, "peaks {peaks:?}");
        assert!((peaks[0] - 5.0).abs() < 0.2);
    }

    #[test]
    fn trimodal_load_gives_three_peaks() {
        // Figure 5's regime.
        let mix =
            Mixture::from_triples(&[(0.35, 0.94, 0.02), (0.40, 0.49, 0.04), (0.25, 0.33, 0.02)]);
        let mut rng = StdRng::seed_from_u64(3);
        let data = mix.sample_n(&mut rng, 6000);
        let kde = Kde::new(&data);
        let peaks = kde.peaks(0.0, 1.2, 600, 0.1);
        assert_eq!(peaks.len(), 3, "peaks {peaks:?}");
        assert!((peaks[0] - 0.33).abs() < 0.06);
        assert!((peaks[1] - 0.49).abs() < 0.06);
        assert!((peaks[2] - 0.94).abs() < 0.06);
    }

    #[test]
    fn valley_lies_between_modes() {
        let mix = Mixture::from_triples(&[(0.5, 0.2, 0.03), (0.5, 0.8, 0.03)]);
        let mut rng = StdRng::seed_from_u64(4);
        let data = mix.sample_n(&mut rng, 4000);
        let kde = Kde::new(&data);
        let v = kde.valley(0.2, 0.8, 300);
        assert!(v > 0.3 && v < 0.7, "valley {v}");
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = Kde::with_bandwidth(&[1.0, 2.0], 0.5);
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    #[should_panic]
    fn empty_data_panics() {
        Kde::new(&[]);
    }
}
