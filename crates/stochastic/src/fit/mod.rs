//! Fitting distributions to measured data (paper Section 2.1).
//!
//! The paper's pipeline is: collect a trace (runtimes, bandwidth, load),
//! decide what family describes it (normal, long-tailed, modal), fit that
//! family, and summarize it as a stochastic value. This module implements
//! each step, including the normality diagnostics that decide whether "in
//! many cases assuming that the distribution is normal is satisfactory".

mod kde;
mod modes;

pub use kde::Kde;
pub use modes::{detect_modes, ModalModel, Mode};

use crate::dist::{ks_p_value, ks_statistic, Empirical, LogNormal, Normal};
use crate::stats::Summary;
use crate::value::StochasticValue;

/// Fits a normal by the method of moments (sample mean and sd).
/// Returns `None` for fewer than two observations.
pub fn fit_normal(data: &[f64]) -> Option<Normal> {
    if data.len() < 2 {
        return None;
    }
    let s = Summary::from_slice(data);
    Some(Normal::new(s.mean(), s.sd()))
}

/// Fits a lognormal by moment matching on the log scale.
/// Returns `None` if fewer than two observations or any are non-positive.
pub fn fit_lognormal(data: &[f64]) -> Option<LogNormal> {
    if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let s = Summary::from_slice(&logs);
    // tidy:allow(PP004): degenerate-sample guard; sd is exactly 0 for constant data
    if s.sd() == 0.0 {
        return None;
    }
    Some(LogNormal::new(s.mean(), s.sd()))
}

/// Fits a thresholded long-tailed distribution (Section 2.1.1's family).
///
/// The tail direction follows the sample skew: left-skewed data (shared
/// bandwidth) gets a tail *below* a threshold just above the max;
/// right-skewed data (latency, loaded runtimes) gets a tail *above* a
/// threshold just below the min. Returns `None` when the data is too small
/// or degenerate.
pub fn fit_longtailed(data: &[f64]) -> Option<crate::dist::LongTailed> {
    use crate::dist::{LongTailed, TailDirection};
    if data.len() < 8 {
        return None;
    }
    let s = Summary::from_slice(data);
    // tidy:allow(PP004): degenerate-sample guard; sd is exactly 0 for constant data
    if s.sd() == 0.0 {
        return None;
    }
    let pad = 0.02 * (s.max() - s.min());
    let (threshold, direction) = if s.skewness() <= 0.0 {
        (s.max() + pad, TailDirection::Below)
    } else {
        (s.min() - pad, TailDirection::Above)
    };
    let gaps: Vec<f64> = data
        .iter()
        .map(|&x| match direction {
            TailDirection::Below => threshold - x,
            TailDirection::Above => x - threshold,
        })
        .collect();
    let tail = fit_lognormal(&gaps)?;
    Some(LongTailed::new(threshold, tail, direction))
}

/// Summarizes data as a stochastic value via a fitted normal
/// (mean ± 2 sd) — the paper's default representation.
pub fn to_stochastic(data: &[f64]) -> Option<StochasticValue> {
    fit_normal(data).map(|n| StochasticValue::from_mean_sd(n.mu(), n.sigma()))
}

/// Diagnostics for the "is normal good enough?" decision of Section 2.1.
#[derive(Debug, Clone, Copy)]
pub struct NormalityReport {
    /// Kolmogorov–Smirnov statistic against the fitted normal.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub ks_p_value: f64,
    /// Anderson–Darling adjusted statistic (tail-sensitive); rejects
    /// normality at 5% when above 0.752.
    pub ad_statistic: f64,
    /// Whether the AD test rejects normality at the 5% level.
    pub ad_rejects: bool,
    /// Sample skewness (long tails show up here).
    pub skewness: f64,
    /// Sample excess kurtosis.
    pub kurtosis: f64,
    /// Fraction of the data inside mean ± 2 sd. The paper's §2.1.1 example:
    /// a long-tailed bandwidth trace covered only ~91% instead of ~95%.
    pub two_sigma_coverage: f64,
}

impl NormalityReport {
    /// A pragmatic verdict: is a normal summary adequate for scheduling
    /// purposes? Thresholds follow the paper's tolerance for "inaccuracy in
    /// the data ... tolerated by the scheduler".
    pub fn is_adequate(&self) -> bool {
        self.two_sigma_coverage >= 0.93 && self.skewness.abs() < 1.0
    }
}

/// Runs the normality diagnostics on a trace.
/// Returns `None` for fewer than eight observations.
pub fn normality_report(data: &[f64]) -> Option<NormalityReport> {
    if data.len() < 8 {
        return None;
    }
    let s = Summary::from_slice(data);
    let normal = Normal::new(s.mean(), s.sd());
    let emp = Empirical::new(data);
    let d = ks_statistic(&emp, &normal);
    let (lo, hi) = (s.mean() - 2.0 * s.sd(), s.mean() + 2.0 * s.sd());
    let (ad_statistic, ad_rejects) =
        crate::dist::ad_normality(data).unwrap_or((f64::INFINITY, true));
    Some(NormalityReport {
        ks_statistic: d,
        ks_p_value: ks_p_value(d, data.len()),
        ad_statistic,
        ad_rejects,
        skewness: s.skewness(),
        kurtosis: s.kurtosis(),
        two_sigma_coverage: emp.fraction_within(lo, hi),
    })
}

/// Which family best summarizes a trace, chosen by KS distance among the
/// candidates the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyChoice {
    /// Plain normal.
    Normal,
    /// Long-tailed (lognormal fit was closer).
    LongTailed,
    /// Multi-modal (mode detection found more than one mode).
    Modal,
}

/// Classifies a trace into the paper's three regimes.
pub fn classify(data: &[f64]) -> Option<FamilyChoice> {
    if data.len() < 16 {
        return None;
    }
    let modal = detect_modes(data, Default::default());
    if let Some(m) = &modal {
        if m.modes().len() > 1 {
            return Some(FamilyChoice::Modal);
        }
    }
    let emp = Empirical::new(data);
    let n_fit = fit_normal(data)?;
    let d_normal = ks_statistic(&emp, &n_fit);
    if let Some(lt_fit) = fit_longtailed(data) {
        let d_lt = ks_statistic(&emp, &lt_fit);
        if d_lt + 0.01 < d_normal {
            return Some(FamilyChoice::LongTailed);
        }
    }
    Some(FamilyChoice::Normal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fit_normal_recovers_parameters() {
        let truth = Normal::new(9.8, 1.4);
        let mut rng = StdRng::seed_from_u64(1);
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = fit_normal(&data).unwrap();
        assert!((fit.mu() - 9.8).abs() < 0.05);
        assert!((fit.sigma() - 1.4).abs() < 0.05);
        assert!(fit_normal(&[1.0]).is_none());
    }

    #[test]
    fn fit_lognormal_recovers_parameters() {
        let truth = LogNormal::new(1.2, 0.4);
        let mut rng = StdRng::seed_from_u64(2);
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = fit_lognormal(&data).unwrap();
        assert!((fit.mu() - 1.2).abs() < 0.02);
        assert!((fit.sigma() - 0.4).abs() < 0.02);
        assert!(fit_lognormal(&[1.0, -2.0, 3.0]).is_none());
    }

    #[test]
    fn normality_report_accepts_normal_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Normal::new(12.0, 0.5).sample_n(&mut rng, 5000);
        let rep = normality_report(&data).unwrap();
        assert!(rep.is_adequate(), "{rep:?}");
        assert!((rep.two_sigma_coverage - 0.9545).abs() < 0.02);
        assert!(rep.ks_p_value > 0.001);
        assert!(
            !rep.ad_rejects,
            "AD rejected true normal: {}",
            rep.ad_statistic
        );
    }

    #[test]
    fn normality_report_flags_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        // Strongly skewed lognormal.
        let data = LogNormal::new(0.0, 1.2).sample_n(&mut rng, 5000);
        let rep = normality_report(&data).unwrap();
        assert!(!rep.is_adequate(), "{rep:?}");
        assert!(rep.skewness > 1.0);
    }

    #[test]
    fn classify_three_regimes() {
        let mut rng = StdRng::seed_from_u64(5);
        let normal_data = Normal::new(10.0, 1.0).sample_n(&mut rng, 3000);
        assert_eq!(classify(&normal_data), Some(FamilyChoice::Normal));

        let lt = crate::dist::LongTailed::below(6.2, 0.95, 0.9);
        let lt_data = lt.sample_n(&mut rng, 3000);
        // Long-tailed data must not classify as plain normal.
        let c = classify(&lt_data).unwrap();
        assert_ne!(c, FamilyChoice::Normal, "classified {c:?}");

        let mix = crate::dist::Mixture::from_triples(&[(0.5, 0.2, 0.02), (0.5, 0.9, 0.02)]);
        let mix_data = mix.sample_n(&mut rng, 3000);
        assert_eq!(classify(&mix_data), Some(FamilyChoice::Modal));
    }

    #[test]
    fn to_stochastic_is_mean_two_sd() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = to_stochastic(&data).unwrap();
        assert!((v.mean() - 5.0).abs() < 1e-12);
        assert!((v.half_width() - 2.0 * 2.138_089_935).abs() < 1e-5);
    }
}
