//! Mode detection for multi-modal data (paper Section 2.1.2).
//!
//! Production CPU load "can be viewed as several sets of data, each having
//! its own distribution". We find the modes with a KDE peak search, split
//! the trace at density valleys, and fit a normal per mode with an
//! occupancy weight — yielding exactly the `P_i (M_i ± SD_i)` structure the
//! paper averages over.

use super::kde::Kde;
use crate::dist::{Mixture, MixtureComponent, Normal};
use crate::stats::Summary;
use crate::value::StochasticValue;
use serde::{Deserialize, Serialize};

/// One detected mode: a normal plus how often the data sits in it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mode {
    /// Fraction of observations assigned to this mode (`P_i`).
    pub weight: f64,
    /// Fitted per-mode distribution (`M_i ± SD_i`).
    pub normal: Normal,
    /// Number of observations assigned.
    pub count: usize,
}

impl Mode {
    /// The mode's stochastic value `M_i ± 2 SD_i`.
    pub fn stochastic(&self) -> StochasticValue {
        StochasticValue::from_mean_sd(self.normal.mu(), self.normal.sigma())
    }
}

/// Tuning for [`detect_modes`].
#[derive(Debug, Clone, Copy)]
pub struct ModeDetectConfig {
    /// Grid resolution for the KDE peak scan.
    pub grid: usize,
    /// Peaks below this fraction of the tallest peak are discarded.
    pub min_peak_height: f64,
    /// Modes holding fewer than this fraction of observations are merged
    /// into their nearest neighbour.
    pub min_weight: f64,
}

impl Default for ModeDetectConfig {
    fn default() -> Self {
        Self {
            grid: 512,
            min_peak_height: 0.10,
            min_weight: 0.02,
        }
    }
}

/// The result of mode detection: boundaries, per-mode fits, weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModalModel {
    modes: Vec<Mode>,
    /// Valley positions separating consecutive modes (len = modes - 1).
    boundaries: Vec<f64>,
}

impl ModalModel {
    /// The detected modes, ordered by increasing mean.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// Valleys separating the modes.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Index of the mode containing `x` (by the valley boundaries).
    pub fn mode_of(&self, x: f64) -> usize {
        self.boundaries.partition_point(|&b| b < x)
    }

    /// The single-mode stochastic value for the mode containing `x` — what
    /// Platform 1's predictor uses when "load values remain within a single
    /// mode for the duration of the application execution time".
    pub fn stochastic_for(&self, x: f64) -> StochasticValue {
        self.modes[self.mode_of(x)].stochastic()
    }

    /// The paper's multi-modal average `sum_i P_i (M_i ± SD_i)`.
    pub fn weighted_average(&self) -> StochasticValue {
        let mean: f64 = self.modes.iter().map(|m| m.weight * m.normal.mu()).sum();
        let half: f64 = self
            .modes
            .iter()
            .map(|m| m.weight * 2.0 * m.normal.sigma())
            .sum();
        StochasticValue::new(mean, half)
    }

    /// The equivalent mixture distribution.
    pub fn to_mixture(&self) -> Mixture {
        Mixture::new(
            self.modes
                .iter()
                .map(|m| MixtureComponent {
                    weight: m.weight,
                    normal: m.normal,
                })
                .collect(),
        )
    }
}

/// Detects the modes of a trace. Returns `None` for fewer than 32
/// observations or degenerate (constant) data.
pub fn detect_modes(data: &[f64], cfg: ModeDetectConfig) -> Option<ModalModel> {
    if data.len() < 32 {
        return None;
    }
    let s = Summary::from_slice(data);
    if s.max() <= s.min() {
        return None;
    }
    let kde = Kde::new(data);
    let pad = 0.05 * (s.max() - s.min());
    let (lo, hi) = (s.min() - pad, s.max() + pad);
    let peaks = kde.peaks(lo, hi, cfg.grid, cfg.min_peak_height);
    if peaks.is_empty() {
        // Flat-ish density; treat as a single mode.
        return Some(single_mode(data));
    }

    // Valleys between consecutive peaks.
    let mut boundaries: Vec<f64> = peaks
        .windows(2)
        .map(|w| kde.valley(w[0], w[1], cfg.grid / 2))
        .collect();

    // Assign observations to modes and fit each.
    let mut model = fit_modes(data, &boundaries);

    // Merge ultra-light modes into neighbours until all meet min_weight.
    while let Some(idx) = model.modes.iter().position(|m| m.weight < cfg.min_weight) {
        if model.modes.len() == 1 {
            break;
        }
        // Drop the boundary that isolates the light mode (the nearer one).
        let b_idx = if idx == 0 {
            0
        } else if idx == model.modes.len() - 1 {
            idx - 1
        } else {
            // Merge toward the closer neighbour mean.
            let left_gap = model.modes[idx].normal.mu() - model.modes[idx - 1].normal.mu();
            let right_gap = model.modes[idx + 1].normal.mu() - model.modes[idx].normal.mu();
            if left_gap <= right_gap {
                idx - 1
            } else {
                idx
            }
        };
        boundaries.remove(b_idx);
        model = fit_modes(data, &boundaries);
    }
    Some(model)
}

fn single_mode(data: &[f64]) -> ModalModel {
    let s = Summary::from_slice(data);
    ModalModel {
        modes: vec![Mode {
            weight: 1.0,
            normal: Normal::new(s.mean(), s.sd()),
            count: data.len(),
        }],
        boundaries: vec![],
    }
}

fn fit_modes(data: &[f64], boundaries: &[f64]) -> ModalModel {
    let k = boundaries.len() + 1;
    let mut buckets: Vec<Summary> = vec![Summary::new(); k];
    for &x in data {
        let idx = boundaries.partition_point(|&b| b < x);
        buckets[idx].push(x);
    }
    let n = data.len() as f64;
    let modes: Vec<Mode> = buckets
        .iter()
        .map(|s| Mode {
            weight: s.count() as f64 / n,
            normal: Normal::new(if s.count() > 0 { s.mean() } else { 0.0 }, s.sd()),
            count: s.count() as usize,
        })
        .collect();
    ModalModel {
        modes,
        boundaries: boundaries.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Mixture};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure5_trace(n: usize, seed: u64) -> Vec<f64> {
        let mix =
            Mixture::from_triples(&[(0.35, 0.94, 0.02), (0.40, 0.49, 0.04), (0.25, 0.33, 0.02)]);
        let mut rng = StdRng::seed_from_u64(seed);
        mix.sample_n(&mut rng, n)
    }

    #[test]
    fn detects_figure5_three_modes() {
        let data = figure5_trace(8000, 1);
        let model = detect_modes(&data, Default::default()).unwrap();
        assert_eq!(model.modes().len(), 3, "{model:?}");
        let means: Vec<f64> = model.modes().iter().map(|m| m.normal.mu()).collect();
        assert!((means[0] - 0.33).abs() < 0.05);
        assert!((means[1] - 0.49).abs() < 0.05);
        assert!((means[2] - 0.94).abs() < 0.05);
        // Weights approximately recover the mixture proportions.
        let w: Vec<f64> = model.modes().iter().map(|m| m.weight).collect();
        assert!((w[0] - 0.25).abs() < 0.05);
        assert!((w[1] - 0.40).abs() < 0.05);
        assert!((w[2] - 0.35).abs() < 0.05);
    }

    #[test]
    fn mode_of_respects_boundaries() {
        let data = figure5_trace(8000, 2);
        let model = detect_modes(&data, Default::default()).unwrap();
        assert_eq!(model.mode_of(0.30), 0);
        assert_eq!(model.mode_of(0.50), 1);
        assert_eq!(model.mode_of(0.95), 2);
    }

    #[test]
    fn stochastic_for_center_mode_matches_platform1() {
        // Platform 1: "the load ... was in the center mode, with a mean of
        // 0.48. Two standard deviations ... gave us a stochastic load value
        // of 0.48 ± 0.05."
        let data = figure5_trace(8000, 3);
        let model = detect_modes(&data, Default::default()).unwrap();
        let sv = model.stochastic_for(0.48);
        assert!((sv.mean() - 0.49).abs() < 0.05, "{sv}");
        assert!(sv.half_width() < 0.12, "{sv}");
    }

    #[test]
    fn unimodal_data_gives_single_mode() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = crate::dist::Normal::new(0.5, 0.05).sample_n(&mut rng, 2000);
        let model = detect_modes(&data, Default::default()).unwrap();
        assert_eq!(model.modes().len(), 1);
        assert!((model.modes()[0].normal.mu() - 0.5).abs() < 0.01);
        assert_eq!(model.modes()[0].weight, 1.0);
    }

    #[test]
    fn weighted_average_formula() {
        let data = figure5_trace(8000, 5);
        let model = detect_modes(&data, Default::default()).unwrap();
        let avg = model.weighted_average();
        let manual_mean: f64 = model.modes().iter().map(|m| m.weight * m.normal.mu()).sum();
        assert!((avg.mean() - manual_mean).abs() < 1e-12);
    }

    #[test]
    fn to_mixture_round_trips_weights() {
        let data = figure5_trace(8000, 6);
        let model = detect_modes(&data, Default::default()).unwrap();
        let mix = model.to_mixture();
        assert_eq!(mix.n_modes(), model.modes().len());
        let total: f64 = mix.components().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_little_or_degenerate_data() {
        assert!(detect_modes(&[1.0; 10], Default::default()).is_none());
        assert!(detect_modes(&[2.0; 100], Default::default()).is_none());
    }
}
