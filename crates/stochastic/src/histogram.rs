//! Histograms: the paper's figures 1, 3, 5, and 10 are all histograms of
//! measured values (runtimes, bandwidth, CPU load). This module provides the
//! binning, normalized-density view, and ASCII rendering used by the figure
//! harness.

use serde::{Deserialize, Serialize};

/// A fixed-width-bin histogram over a closed range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty: [{lo}, {hi}]");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Builds a histogram spanning the data's own min..max range.
    /// Returns `None` if the data is empty or degenerate (all equal).
    pub fn from_data(data: &[f64], bins: usize) -> Option<Self> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in data {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        let mut h = Self::new(lo, hi, bins);
        h.extend(data.iter().copied());
        Some(h)
    }

    /// Adds one observation. Out-of-range observations are tallied
    /// separately and do not panic — production traces contain outliers.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
            return;
        }
        if x > self.hi {
            self.above += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((x - self.lo) / w) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // x == hi lands in the last bin
        }
        self.counts[idx] += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend(&mut self, data: impl IntoIterator<Item = f64>) {
        for x in data {
            self.push(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations pushed (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn below_range(&self) -> u64 {
        self.below
    }

    /// Observations above the range.
    pub fn above_range(&self) -> u64 {
        self.above
    }

    /// Fraction of all observations landing in bin `i` (a probability mass).
    pub fn mass(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Density estimate for bin `i`: mass divided by bin width, comparable
    /// to a PDF (the overlay the paper draws in Figures 1 and 3).
    pub fn density(&self, i: usize) -> f64 {
        self.mass(i) / self.bin_width()
    }

    /// Percentage-of-values view (`mass * 100`), matching the paper's y-axes
    /// ("Percentage of values equal to X").
    pub fn percent(&self, i: usize) -> f64 {
        self.mass(i) * 100.0
    }

    /// The empirical CDF evaluated at the right edge of each bin, in
    /// percent, matching Figures 2 and 4 ("Percentage of values ≤ X").
    pub fn cdf_percent(&self) -> Vec<(f64, f64)> {
        let mut acc = self.below;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let edge = self.lo + (i as f64 + 1.0) * self.bin_width();
            let pct = if self.total == 0 {
                0.0
            } else {
                100.0 * acc as f64 / self.total as f64
            };
            out.push((edge, pct));
        }
        out
    }

    /// Renders an ASCII bar chart, one row per bin, widest bar `width` chars.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut s = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as f64 / max as f64 * width as f64).round() as usize;
            s.push_str(&format!(
                "{:>10.3} | {:<width$} {:>6} ({:5.1}%)\n",
                self.bin_center(i),
                "#".repeat(bar),
                c,
                self.percent(i),
                width = width
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
        h.push(0.0);
        h.push(1.99);
        h.push(2.0);
        h.push(10.0); // boundary lands in last bin
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
    }

    #[test]
    fn out_of_range_is_tallied_not_dropped_silently() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.5);
        h.push(0.5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.below_range(), 1);
        assert_eq!(h.above_range(), 1);
        // Mass accounts for the outliers in the denominator.
        assert!((h.mass(0) + h.mass(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_spans_range() {
        let data = [3.0, 7.0, 5.0, 4.0];
        let h = Histogram::from_data(&data, 4).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.below_range() + h.above_range(), 0);
        assert!(Histogram::from_data(&[], 4).is_none());
        assert!(Histogram::from_data(&[2.0, 2.0], 4).is_none());
    }

    #[test]
    fn cdf_reaches_100_percent() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend((0..100).map(|i| i as f64 / 100.0));
        let cdf = h.cdf_percent();
        assert_eq!(cdf.len(), 10);
        let (_, last) = cdf[9];
        assert!((last - 100.0).abs() < 1e-9);
        // Monotone non-decreasing.
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn density_integrates_to_one_without_outliers() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).fract()).collect();
        let h = Histogram::from_data(&data, 20).unwrap();
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.2, 0.6, 0.9]);
        let art = h.render_ascii(20);
        assert_eq!(art.lines().count(), 4);
    }
}
