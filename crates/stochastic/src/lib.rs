//! # prodpred-stochastic
//!
//! Stochastic values and the statistics machinery behind *Performance
//! Prediction in Production Environments* (Schopf & Berman, IPPS/SPDP '98).
//!
//! A **stochastic value** represents a system or application characteristic
//! as a distribution summarized as `mean ± 2σ`, instead of a single point
//! value. This crate provides:
//!
//! * [`StochasticValue`] — the central type, with the paper's Table-2
//!   arithmetic (related/unrelated addition and multiplication, division by
//!   reciprocal, point-value degeneration) in [`ops`],
//! * group operations ([`ops::max_of`], [`ops::min_of`]) with the paper's
//!   selection policies plus Clark's approximation and Monte Carlo,
//! * distribution families in [`dist`] — normal, lognormal/long-tailed,
//!   normal mixtures for modal data, and empirical distributions with KS
//!   goodness-of-fit,
//! * fitting and regime classification in [`fit`] — normal fits, KDE, and
//!   the mode detector that reproduces the paper's Figure-5 analysis,
//! * accuracy metrics in [`coverage`] — interval coverage and the paper's
//!   footnote-6 out-of-range error,
//! * plain statistics in [`stats`] and histograms in [`histogram`].
//!
//! ## Quick example
//!
//! ```
//! use prodpred_stochastic::{Dependence, StochasticValue};
//!
//! // Communication time = message / bandwidth, both uncertain:
//! let message = StochasticValue::point(1.0e6); // bytes, known exactly
//! let bandwidth = StochasticValue::new(8.0e6, 2.0e6); // B/s, ± 2 MB/s
//! let time = message.div(&bandwidth, Dependence::Unrelated);
//! assert!((time.mean() - 0.125).abs() < 1e-9);
//! assert!(!time.is_point());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod coverage;
pub mod dist;
pub mod fit;
pub mod histogram;
pub mod ops;
pub mod special;
pub mod stats;
mod value;

pub use coverage::{calibration_curve, AccuracyReport, Observation};
pub use dist::{
    Distribution, Empirical, LogNormal, LongTailed, Mixture, Normal, TailDirection, TruncatedNormal,
};
pub use histogram::Histogram;
pub use ops::{max_of, min_of, sum_related, sum_unrelated, Dependence, MaxStrategy};
pub use stats::Summary;
pub use value::StochasticValue;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::coverage::{AccuracyReport, Observation};
    pub use crate::dist::{Distribution, Empirical, Mixture, Normal};
    pub use crate::fit::{detect_modes, fit_normal, to_stochastic};
    pub use crate::histogram::Histogram;
    pub use crate::ops::{max_of, min_of, sum_related, sum_unrelated, Dependence, MaxStrategy};
    pub use crate::stats::Summary;
    pub use crate::value::StochasticValue;
}
