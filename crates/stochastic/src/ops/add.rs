//! Addition and subtraction rules (paper Section 2.3.1).

use crate::value::StochasticValue;

/// Related addition (Table 2, row 2):
/// "the sum of their means and the sum of their variances":
/// `sum (X_i ± a_i) = sum X_i ± sum |a_i|`.
///
/// This is the conservative estimate — it assumes the errors move together
/// so the interval must not be "over-smoothed".
pub fn add_related(a: &StochasticValue, b: &StochasticValue) -> StochasticValue {
    StochasticValue::new(a.mean() + b.mean(), a.half_width() + b.half_width())
}

/// Unrelated addition (Table 2, row 3): the probability-based square-root
/// error computation `sum X_i ± sqrt(sum a_i^2)`.
///
/// For independent normals this is *exact*: normals are closed under
/// addition with variances adding, and the two-sigma half-widths therefore
/// combine in quadrature.
pub fn add_unrelated(a: &StochasticValue, b: &StochasticValue) -> StochasticValue {
    let ha = a.half_width();
    let hb = b.half_width();
    StochasticValue::new(a.mean() + b.mean(), ha.hypot(hb))
}

/// Correlation-parameterized addition, generalizing the paper's two
/// regimes: for correlation `rho` the variance law gives
/// `a^2 + b^2 + 2 rho a b` for the squared half-width. `rho = 0` is the
/// unrelated rule; `rho = 1` is the related rule; negative `rho` models
/// anticorrelated quantities (one resource's gain is another's loss) and
/// *narrows* the sum.
///
/// # Panics
///
/// Panics unless `rho` lies in `[-1, 1]`.
pub fn add_correlated(a: &StochasticValue, b: &StochasticValue, rho: f64) -> StochasticValue {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation must lie in [-1, 1], got {rho}"
    );
    let (ha, hb) = (a.half_width(), b.half_width());
    let var = (ha * ha + hb * hb + 2.0 * rho * ha * hb).max(0.0);
    StochasticValue::new(a.mean() + b.mean(), var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn related_adds_half_widths() {
        let a = StochasticValue::new(8.0, 2.0);
        let b = StochasticValue::new(3.0, 1.0);
        let s = add_related(&a, &b);
        assert_eq!(s.mean(), 11.0);
        assert_eq!(s.half_width(), 3.0);
    }

    #[test]
    fn unrelated_adds_in_quadrature() {
        let a = StochasticValue::new(8.0, 3.0);
        let b = StochasticValue::new(3.0, 4.0);
        let s = add_unrelated(&a, &b);
        assert_eq!(s.mean(), 11.0);
        assert!((s.half_width() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_plus_stochastic_shifts_only() {
        // Table 2 row 1: (X ± a) + P = (X + P) ± a, under either rule.
        let x = StochasticValue::new(10.0, 1.5);
        let p = StochasticValue::point(4.0);
        for s in [add_related(&x, &p), add_unrelated(&x, &p)] {
            assert_eq!(s.mean(), 14.0);
            assert_eq!(s.half_width(), 1.5);
        }
    }

    #[test]
    fn subtraction_via_negation() {
        let a = StochasticValue::new(10.0, 3.0);
        let b = StochasticValue::new(4.0, 4.0);
        let d = add_unrelated(&a, &b.neg());
        assert_eq!(d.mean(), 6.0);
        assert!((d.half_width() - 5.0).abs() < 1e-12);
        let dr = add_related(&a, &b.neg());
        assert_eq!(dr.half_width(), 7.0);
    }

    #[test]
    fn unrelated_rule_is_exact_for_independent_normals() {
        // Monte-Carlo ground truth: sample X ~ N, Y ~ N independently,
        // check the predicted interval of X+Y covers ~95.45%.
        let a = StochasticValue::new(12.0, 0.6);
        let b = StochasticValue::new(5.0, 1.0);
        let predicted = add_unrelated(&a, &b);
        let (na, nb) = (a.to_normal(), b.to_normal());
        let mut rng = StdRng::seed_from_u64(2024);
        let mut s = Summary::new();
        let mut inside = 0usize;
        let n = 40_000;
        for _ in 0..n {
            let x = na.sample(&mut rng) + nb.sample(&mut rng);
            s.push(x);
            if predicted.contains(x) {
                inside += 1;
            }
        }
        assert!((s.mean() - predicted.mean()).abs() < 0.02);
        assert!((2.0 * s.sd() - predicted.half_width()).abs() < 0.02);
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.9545).abs() < 0.01, "coverage {frac}");
    }

    #[test]
    fn correlated_addition_interpolates_the_regimes() {
        let a = StochasticValue::new(8.0, 3.0);
        let b = StochasticValue::new(3.0, 4.0);
        let rho0 = add_correlated(&a, &b, 0.0);
        let rho1 = add_correlated(&a, &b, 1.0);
        assert_eq!(rho0.half_width(), add_unrelated(&a, &b).half_width());
        assert!((rho1.half_width() - add_related(&a, &b).half_width()).abs() < 1e-12);
        // Monotone in rho.
        let mut prev = 0.0;
        for i in 0..=20 {
            let rho = -1.0 + 0.1 * i as f64;
            let w = add_correlated(&a, &b, rho).half_width();
            assert!(w >= prev - 1e-12, "width not monotone at rho {rho}");
            prev = w;
        }
        // Perfect anticorrelation: widths cancel to |a - b|.
        let anti = add_correlated(&a, &b, -1.0);
        assert!((anti.half_width() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_addition_matches_sampled_correlated_normals() {
        // Build correlated pairs: Y = rho X + sqrt(1-rho^2) Z.
        let rho = 0.6;
        let (sx, sy) = (1.5, 1.0);
        let x = Normal::new(0.0, 1.0);
        let z = Normal::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(17);
        let mut s = Summary::new();
        for _ in 0..60_000 {
            let xv = x.sample(&mut rng);
            let yv = rho * xv + (1.0f64 - rho * rho).sqrt() * z.sample(&mut rng);
            s.push(sx * xv + sy * yv);
        }
        let predicted = add_correlated(
            &StochasticValue::from_mean_sd(0.0, sx),
            &StochasticValue::from_mean_sd(0.0, sy),
            rho,
        );
        assert!(
            (2.0 * s.sd() - predicted.half_width()).abs() < 0.03,
            "sampled {} vs rule {}",
            2.0 * s.sd(),
            predicted.half_width()
        );
    }

    #[test]
    #[should_panic]
    fn correlated_rejects_out_of_range_rho() {
        add_correlated(
            &StochasticValue::new(0.0, 1.0),
            &StochasticValue::new(0.0, 1.0),
            1.5,
        );
    }

    #[test]
    fn related_rule_is_exact_for_perfectly_correlated_normals() {
        // If Y = c * X (perfect positive correlation), sd(X+Y) = sd(X)+sd(Y).
        let x = Normal::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Summary::new();
        for _ in 0..40_000 {
            let v = x.sample(&mut rng);
            s.push(v + 2.0 * v); // sd should be 3
        }
        assert!((s.sd() - 3.0).abs() < 0.05);
        // Which is what the related rule predicts:
        let sv = add_related(
            &StochasticValue::from_mean_sd(0.0, 1.0),
            &StochasticValue::from_mean_sd(0.0, 2.0),
        );
        assert!((sv.sd() - 3.0).abs() < 1e-12);
    }
}
