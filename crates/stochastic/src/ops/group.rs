//! Group operations — Max, Min — over stochastic values (paper §2.3.3).
//!
//! "The combination of stochastic values for operations over a group must
//! often be addressed in a situation-dependent manner." The paper sketches
//! two policies (largest mean; largest magnitude in range) and leaves the
//! choice to "the usage of the resulting Max value and the quality of
//! information required". We implement those two, plus two sharper
//! estimators the structural SOR model can use: Clark's classical
//! moment-matching approximation for the max of normals, and a seeded
//! Monte-Carlo estimator as ground truth.

use crate::special::{std_normal_cdf, std_normal_pdf};
use crate::value::StochasticValue;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Policy for computing `Max` over stochastic values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaxStrategy {
    /// "choosing the largest mean of the stochastic value inputs":
    /// the winner's whole stochastic value is returned.
    ByMean,
    /// "selecting the stochastic value with the largest magnitude value in
    /// its entire range" (largest upper endpoint).
    ByUpperBound,
    /// Pessimistic-floor variant: the value with the largest *lower*
    /// endpoint — the guaranteed-slowest participant.
    ByLowerBound,
    /// Clark's (1961) moment-matching approximation of the maximum of
    /// independent normals, folded pairwise. Produces a genuinely new
    /// distribution rather than selecting an input.
    Clark,
    /// Seeded Monte-Carlo estimate of the exact max distribution
    /// (independent normals), summarized as mean ± 2 sd.
    MonteCarlo {
        /// Number of samples.
        samples: usize,
        /// RNG seed — group ops stay deterministic.
        seed: u64,
    },
}

impl Default for MaxStrategy {
    /// `ByMean` — "on average, the values of A are likely to be higher".
    fn default() -> Self {
        MaxStrategy::ByMean
    }
}

/// `Max` over a non-empty set of stochastic values under `strategy`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn max_of(values: &[StochasticValue], strategy: MaxStrategy) -> StochasticValue {
    assert!(!values.is_empty(), "max over an empty set");
    match strategy {
        MaxStrategy::ByMean => *values
            .iter()
            .max_by(|a, b| a.mean().total_cmp(&b.mean()))
            .expect("asserted non-empty above"), // tidy:allow(PP003): asserted non-empty above
        MaxStrategy::ByUpperBound => *values
            .iter()
            .max_by(|a, b| a.hi().total_cmp(&b.hi()))
            .expect("asserted non-empty above"), // tidy:allow(PP003): asserted non-empty above
        MaxStrategy::ByLowerBound => *values
            .iter()
            .max_by(|a, b| a.lo().total_cmp(&b.lo()))
            .expect("asserted non-empty above"), // tidy:allow(PP003): asserted non-empty above
        MaxStrategy::Clark => values
            .iter()
            .copied()
            .reduce(|a, b| clark_max(&a, &b))
            .expect("asserted non-empty above"), // tidy:allow(PP003): asserted non-empty above
        MaxStrategy::MonteCarlo { samples, seed } => monte_carlo_max(values, samples, seed),
    }
}

/// `Min` over a non-empty set, by the duality `min(X) = -max(-X)`.
pub fn min_of(values: &[StochasticValue], strategy: MaxStrategy) -> StochasticValue {
    assert!(!values.is_empty(), "min over an empty set");
    let negated: Vec<StochasticValue> = values.iter().map(|v| v.neg()).collect();
    max_of(&negated, strategy).neg()
}

/// Clark's approximation for `max(X, Y)` of independent normals:
/// moment-matches the true (non-normal) max distribution with a normal.
///
/// With `theta^2 = s1^2 + s2^2` and `alpha = (m1 - m2)/theta`:
///
/// ```text
/// E[max]   = m1 Phi(alpha) + m2 Phi(-alpha) + theta phi(alpha)
/// E[max^2] = (m1^2+s1^2) Phi(alpha) + (m2^2+s2^2) Phi(-alpha)
///            + (m1+m2) theta phi(alpha)
/// ```
pub fn clark_max(a: &StochasticValue, b: &StochasticValue) -> StochasticValue {
    let (m1, s1) = (a.mean(), a.sd());
    let (m2, s2) = (b.mean(), b.sd());
    let theta2 = s1 * s1 + s2 * s2;
    // tidy:allow(PP004): exact zero variance means both operands are points
    if theta2 == 0.0 {
        // Two point values: the exact max.
        return StochasticValue::point(m1.max(m2));
    }
    let theta = theta2.sqrt();
    let alpha = (m1 - m2) / theta;
    let phi = std_normal_pdf(alpha);
    let cap1 = std_normal_cdf(alpha);
    let cap2 = std_normal_cdf(-alpha);
    let mean = m1 * cap1 + m2 * cap2 + theta * phi;
    let second = (m1 * m1 + s1 * s1) * cap1 + (m2 * m2 + s2 * s2) * cap2 + (m1 + m2) * theta * phi;
    let var = (second - mean * mean).max(0.0);
    StochasticValue::from_mean_sd(mean, var.sqrt())
}

/// Samples per Monte-Carlo-max chunk. Fixed independently of the worker
/// count so the draw streams and merge order — and therefore the result
/// bits — are a function of `(samples, seed)` alone.
const MC_MAX_CHUNK: usize = 8192;

fn monte_carlo_max(values: &[StochasticValue], samples: usize, seed: u64) -> StochasticValue {
    use crate::dist::Distribution;
    let samples = samples.max(2);
    let normals: Vec<crate::dist::Normal> = values.iter().map(|v| v.to_normal()).collect();
    // Chunked fan-out: chunk i draws from its own SplitMix64-derived
    // stream and keeps a local accumulator; the partials are combined in
    // chunk order (Chan's merge), so any thread count — including the
    // serial fallback — produces identical bits.
    let chunks = prodpred_pool::chunk_lengths(samples, MC_MAX_CHUNK);
    let partials = prodpred_pool::parallel_map(&chunks, 0, |i, &len| {
        let mut rng = StdRng::seed_from_u64(prodpred_pool::derive_seed(seed, i as u64));
        let mut summary = crate::stats::Summary::new();
        for _ in 0..len {
            let mut m = f64::NEG_INFINITY;
            for n in &normals {
                m = m.max(n.sample(&mut rng));
            }
            summary.push(m);
        }
        summary
    });
    let mut summary = crate::stats::Summary::new();
    for part in &partials {
        summary.merge(part);
    }
    StochasticValue::from_mean_sd(summary.mean(), summary.sd())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: A = 4 ± 0.5, B = 3 ± 2, C = 3 ± 1.
    fn paper_values() -> [StochasticValue; 3] {
        [
            StochasticValue::new(4.0, 0.5),
            StochasticValue::new(3.0, 2.0),
            StochasticValue::new(3.0, 1.0),
        ]
    }

    #[test]
    fn by_mean_picks_a() {
        // "A has the largest mean"
        let m = max_of(&paper_values(), MaxStrategy::ByMean);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.half_width(), 0.5);
    }

    #[test]
    fn by_upper_bound_picks_b() {
        // "B has the largest value within its range" (3 + 2 = 5)
        let m = max_of(&paper_values(), MaxStrategy::ByUpperBound);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.half_width(), 2.0);
    }

    #[test]
    fn by_lower_bound_picks_a() {
        // lower endpoints: 3.5, 1, 2 -> A
        let m = max_of(&paper_values(), MaxStrategy::ByLowerBound);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn clark_matches_monte_carlo() {
        let vals = paper_values();
        let clark = max_of(&vals, MaxStrategy::Clark);
        let mc = max_of(
            &vals,
            MaxStrategy::MonteCarlo {
                samples: 200_000,
                seed: 42,
            },
        );
        assert!(
            (clark.mean() - mc.mean()).abs() < 0.02,
            "clark {} vs mc {}",
            clark.mean(),
            mc.mean()
        );
        assert!((clark.half_width() - mc.half_width()).abs() < 0.05);
    }

    #[test]
    fn clark_of_two_points_is_exact() {
        let a = StochasticValue::point(4.0);
        let b = StochasticValue::point(7.0);
        let m = clark_max(&a, &b);
        assert!(m.is_point());
        assert_eq!(m.mean(), 7.0);
    }

    #[test]
    fn clark_exceeds_both_means_for_overlapping_inputs() {
        // E[max(X,Y)] > max(E[X], E[Y]) when distributions overlap — the
        // skew the paper's SOR model's Max must capture.
        let a = StochasticValue::new(10.0, 2.0);
        let b = StochasticValue::new(10.0, 2.0);
        let m = clark_max(&a, &b);
        assert!(m.mean() > 10.0);
    }

    #[test]
    fn clark_dominated_input_changes_nothing_much() {
        let a = StochasticValue::new(100.0, 1.0);
        let b = StochasticValue::new(1.0, 1.0);
        let m = clark_max(&a, &b);
        assert!((m.mean() - 100.0).abs() < 1e-6);
        assert!((m.half_width() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_bits_are_thread_count_invariant() {
        // Golden bits for the chunked estimator. The CI determinism smoke
        // job replays this test under PRODPRED_THREADS=1 and =8; a result
        // that depends on the worker count fails one of the two runs.
        let m = max_of(
            &paper_values(),
            MaxStrategy::MonteCarlo {
                samples: 50_000,
                seed: 9,
            },
        );
        assert_eq!(m.mean().to_bits(), 0x4010_6741_3a65_d0b4);
        assert_eq!(m.half_width().to_bits(), 0x3fe6_072f_ecd6_af21);
        // Sanity on the decoded values: max of the paper's inputs sits a
        // little above A's mean of 4.
        assert!((4.0..4.3).contains(&m.mean()), "mean {}", m.mean());
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let vals = paper_values();
        let s = MaxStrategy::MonteCarlo {
            samples: 10_000,
            seed: 7,
        };
        let a = max_of(&vals, s);
        let b = max_of(&vals, s);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.half_width(), b.half_width());
    }

    #[test]
    fn min_duality() {
        let vals = paper_values();
        let m = min_of(&vals, MaxStrategy::ByMean);
        // Smallest mean is 3; ByMean duality picks one of the mean-3 values.
        assert_eq!(m.mean(), 3.0);
        let mc_min = min_of(
            &vals,
            MaxStrategy::MonteCarlo {
                samples: 100_000,
                seed: 1,
            },
        );
        // E[min] must be below every individual mean.
        assert!(mc_min.mean() < 3.0);
    }

    #[test]
    fn max_single_value_is_identity() {
        let v = [StochasticValue::new(5.0, 1.0)];
        for s in [
            MaxStrategy::ByMean,
            MaxStrategy::ByUpperBound,
            MaxStrategy::ByLowerBound,
            MaxStrategy::Clark,
        ] {
            let m = max_of(&v, s);
            assert!((m.mean() - 5.0).abs() < 1e-12);
            assert!((m.half_width() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn empty_max_panics() {
        max_of(&[], MaxStrategy::ByMean);
    }
}
