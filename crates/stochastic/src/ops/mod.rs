//! Arithmetic over stochastic values (paper Section 2.3, Table 2).
//!
//! Two regimes exist for every binary combination:
//!
//! * **Related** distributions — "a causal connection between their values"
//!   (heavy traffic lowers bandwidth *and* raises latency). Combination is
//!   conservative: half-widths add.
//! * **Unrelated** distributions — independent quantities. Combination uses
//!   probability-based square-root (RSS) error propagation.
//!
//! Point values are the degenerate case and combine exactly (Table 2 row 1).
//!
//! Operator overloads (`+`, `-`, `*`, `/`) are provided and use the
//! **unrelated** rules, the standard independence assumption; call the
//! `*_related` methods when a causal connection exists.
//!
//! ```
//! use prodpred_stochastic::{Dependence, StochasticValue};
//!
//! let latency = StochasticValue::new(0.002, 0.0005);
//! let transfer = StochasticValue::new(0.125, 0.031);
//! // Heavy traffic raises both: combine conservatively.
//! let comm = latency.add(&transfer, Dependence::Related);
//! assert!((comm.mean() - 0.127).abs() < 1e-12);
//! assert!((comm.half_width() - 0.0315).abs() < 1e-12);
//! // Independent quantities combine in quadrature (narrower).
//! let indep = latency.add(&transfer, Dependence::Unrelated);
//! assert!(indep.half_width() < comm.half_width());
//! ```

mod add;
mod group;
mod mul;

pub use add::add_correlated;
pub use group::{max_of, min_of, MaxStrategy};

use crate::value::StochasticValue;
use serde::{Deserialize, Serialize};

/// Whether two stochastic values' distributions are causally connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dependence {
    /// Causally connected; combine conservatively (half-widths add).
    Related,
    /// Independent; combine by root-sum-of-squares error propagation.
    Unrelated,
}

impl StochasticValue {
    /// `(X ± a) + (Y ± b)` under the given dependence assumption.
    pub fn add(&self, other: &StochasticValue, dep: Dependence) -> StochasticValue {
        match dep {
            Dependence::Related => add::add_related(self, other),
            Dependence::Unrelated => add::add_unrelated(self, other),
        }
    }

    /// Related addition: `sum X_i ± sum |a_i|` (Table 2, row 2).
    pub fn add_related(&self, other: &StochasticValue) -> StochasticValue {
        add::add_related(self, other)
    }

    /// Unrelated addition: `sum X_i ± sqrt(sum a_i^2)` (Table 2, row 3).
    pub fn add_unrelated(&self, other: &StochasticValue) -> StochasticValue {
        add::add_unrelated(self, other)
    }

    /// Correlation-parameterized addition: `rho = 0` is unrelated,
    /// `rho = 1` related, negative `rho` anticorrelated (see
    /// [`add_correlated`]).
    pub fn add_with_correlation(&self, other: &StochasticValue, rho: f64) -> StochasticValue {
        add::add_correlated(self, other, rho)
    }

    /// `(X ± a) - (Y ± b)`: "subtraction ... would have the same form as
    /// addition, only with a negative value for one of the X_i".
    pub fn sub(&self, other: &StochasticValue, dep: Dependence) -> StochasticValue {
        self.add(&other.neg(), dep)
    }

    /// `(X ± a) * (Y ± b)` under the given dependence assumption.
    pub fn mul(&self, other: &StochasticValue, dep: Dependence) -> StochasticValue {
        match dep {
            Dependence::Related => mul::mul_related(self, other),
            Dependence::Unrelated => mul::mul_unrelated(self, other),
        }
    }

    /// Related multiplication:
    /// `X_i X_j ± (a_i |X_j| + a_j |X_i| + a_i a_j)` (Table 2, row 2).
    pub fn mul_related(&self, other: &StochasticValue) -> StochasticValue {
        mul::mul_related(self, other)
    }

    /// Unrelated multiplication:
    /// `X_i X_j ± |X_i X_j| sqrt((a_i/X_i)^2 + (a_j/X_j)^2)` (Table 2, row 3),
    /// with the paper's zero rule: a zero mean on either side makes the
    /// product the zero point value.
    pub fn mul_unrelated(&self, other: &StochasticValue) -> StochasticValue {
        mul::mul_unrelated(self, other)
    }

    /// Division as multiplication by the reciprocal (paper footnote 5).
    ///
    /// Uses the first-order reciprocal [`recip`](Self::recip) rather than
    /// the footnote's literal `Y^-1 ± b^-1`, which explodes as `b -> 0`;
    /// see `recip_literal` and DESIGN.md.
    pub fn div(&self, other: &StochasticValue, dep: Dependence) -> StochasticValue {
        self.mul(&other.recip(), dep)
    }

    /// First-order reciprocal: `(Y ± b)^-1 = Y^-1 ± b/Y^2`. This preserves
    /// the *relative* half-width, consistent with Table 2's unrelated
    /// multiplication rule.
    ///
    /// # Panics
    ///
    /// Panics if the mean is zero.
    pub fn recip(&self) -> StochasticValue {
        mul::recip(self)
    }

    /// The footnote-5 literal reciprocal `Y^-1 ± b^-1`. Provided for
    /// completeness; degenerates to the point reciprocal when `b == 0`.
    ///
    /// # Panics
    ///
    /// Panics if the mean is zero.
    pub fn recip_literal(&self) -> StochasticValue {
        mul::recip_literal(self)
    }
}

/// Related sum over any number of values: `sum X_i ± sum |a_i|`.
pub fn sum_related<'a>(values: impl IntoIterator<Item = &'a StochasticValue>) -> StochasticValue {
    values
        .into_iter()
        .fold(StochasticValue::point(0.0), |acc, v| acc.add_related(v))
}

/// Unrelated sum over any number of values: `sum X_i ± sqrt(sum a_i^2)`.
pub fn sum_unrelated<'a>(values: impl IntoIterator<Item = &'a StochasticValue>) -> StochasticValue {
    let mut mean = 0.0;
    let mut ss = 0.0;
    for v in values {
        mean += v.mean();
        ss += v.half_width() * v.half_width();
    }
    StochasticValue::new(mean, ss.sqrt())
}

impl std::ops::Add for StochasticValue {
    type Output = StochasticValue;
    fn add(self, rhs: StochasticValue) -> StochasticValue {
        self.add_unrelated(&rhs)
    }
}

impl std::ops::Sub for StochasticValue {
    type Output = StochasticValue;
    fn sub(self, rhs: StochasticValue) -> StochasticValue {
        StochasticValue::sub(&self, &rhs, Dependence::Unrelated)
    }
}

impl std::ops::Mul for StochasticValue {
    type Output = StochasticValue;
    fn mul(self, rhs: StochasticValue) -> StochasticValue {
        self.mul_unrelated(&rhs)
    }
}

impl std::ops::Div for StochasticValue {
    type Output = StochasticValue;
    fn div(self, rhs: StochasticValue) -> StochasticValue {
        StochasticValue::div(&self, &rhs, Dependence::Unrelated)
    }
}

impl std::ops::Add<f64> for StochasticValue {
    type Output = StochasticValue;
    fn add(self, rhs: f64) -> StochasticValue {
        self.shift(rhs)
    }
}

impl std::ops::Sub<f64> for StochasticValue {
    type Output = StochasticValue;
    fn sub(self, rhs: f64) -> StochasticValue {
        self.shift(-rhs)
    }
}

impl std::ops::Mul<f64> for StochasticValue {
    type Output = StochasticValue;
    fn mul(self, rhs: f64) -> StochasticValue {
        self.scale(rhs)
    }
}

impl std::ops::Div<f64> for StochasticValue {
    type Output = StochasticValue;
    fn div(self, rhs: f64) -> StochasticValue {
        assert!(rhs != 0.0, "division of a stochastic value by point zero"); // tidy:allow(PP004): exact zero divisor guard
        self.scale(1.0 / rhs)
    }
}

impl std::ops::Neg for StochasticValue {
    type Output = StochasticValue;
    fn neg(self) -> StochasticValue {
        StochasticValue::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_use_unrelated_rules() {
        let a = StochasticValue::new(10.0, 3.0);
        let b = StochasticValue::new(20.0, 4.0);
        let s = a + b;
        assert_eq!(s.mean(), 30.0);
        assert!((s.half_width() - 5.0).abs() < 1e-12); // sqrt(9+16)
        let d = a - b;
        assert_eq!(d.mean(), -10.0);
        assert!((d.half_width() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_operators() {
        let a = StochasticValue::new(10.0, 2.0);
        assert_eq!((a + 5.0).mean(), 15.0);
        assert_eq!((a + 5.0).half_width(), 2.0);
        assert_eq!((a * 3.0).mean(), 30.0);
        assert_eq!((a * 3.0).half_width(), 6.0);
        assert_eq!((a / 2.0).mean(), 5.0);
        assert_eq!((a / 2.0).half_width(), 1.0);
        assert_eq!((-a).mean(), -10.0);
    }

    #[test]
    fn sums_over_iterators() {
        let vals = [
            StochasticValue::new(1.0, 1.0),
            StochasticValue::new(2.0, 2.0),
            StochasticValue::new(3.0, 2.0),
        ];
        let rel = sum_related(&vals);
        assert_eq!(rel.mean(), 6.0);
        assert_eq!(rel.half_width(), 5.0);
        let unrel = sum_unrelated(&vals);
        assert_eq!(unrel.mean(), 6.0);
        assert!((unrel.half_width() - 3.0).abs() < 1e-12); // sqrt(1+4+4)
    }

    #[test]
    fn related_at_least_as_wide_as_unrelated() {
        let a = StochasticValue::new(5.0, 2.0);
        let b = StochasticValue::new(7.0, 3.0);
        assert!(a.add_related(&b).half_width() >= a.add_unrelated(&b).half_width());
        assert!(a.mul_related(&b).half_width() >= a.mul_unrelated(&b).half_width());
    }
}
