//! Multiplication, division, and reciprocal rules (paper Section 2.3.2).

use crate::value::StochasticValue;

/// Related multiplication (Table 2, row 2):
/// `(X_i ± a_i)(X_j ± a_j) = X_i X_j ± (a_i |X_j| + a_j |X_i| + a_i a_j)`.
///
/// The half-width is exactly the worst-case expansion of the interval
/// product when both factors are positive, "similar to standard statistical
/// error propagation" but keeping the second-order `a_i a_j` term — again a
/// conservative estimate.
pub fn mul_related(a: &StochasticValue, b: &StochasticValue) -> StochasticValue {
    let (xi, ai) = (a.mean(), a.half_width());
    let (xj, aj) = (b.mean(), b.half_width());
    StochasticValue::new(xi * xj, ai * xj.abs() + aj * xi.abs() + ai * aj)
}

/// Unrelated multiplication (Table 2, row 3):
/// `X_i X_j ± |X_i X_j| sqrt((a_i/X_i)^2 + (a_j/X_j)^2)` — relative errors
/// add in quadrature, valid "when the distributions are unrelated, or when
/// `a_i a_j` is very small compared to the other terms".
///
/// The paper's zero rule applies: "In the case that either X_i or X_j is
/// equal to zero, we define their product to be zero."
pub fn mul_unrelated(a: &StochasticValue, b: &StochasticValue) -> StochasticValue {
    let (xi, ai) = (a.mean(), a.half_width());
    let (xj, aj) = (b.mean(), b.half_width());
    // tidy:allow(PP004): multiplying by an exact point zero yields an exact zero
    if xi == 0.0 || xj == 0.0 {
        return StochasticValue::point(0.0);
    }
    let rel = (ai / xi).hypot(aj / xj);
    StochasticValue::new(xi * xj, (xi * xj).abs() * rel)
}

/// First-order reciprocal `(Y ± b)^-1 = 1/Y ± b/Y^2`.
///
/// # Panics
///
/// Panics if the mean is zero (the reciprocal of a distribution straddling
/// zero has no finite moments).
pub fn recip(v: &StochasticValue) -> StochasticValue {
    assert!(
        v.mean() != 0.0, // tidy:allow(PP004): exact zero-mean guard before taking a reciprocal
        "reciprocal of a stochastic value with zero mean"
    );
    let m = v.mean();
    StochasticValue::new(1.0 / m, v.half_width() / (m * m))
}

/// Footnote-5 literal reciprocal `Y^-1 ± b^-1`.
///
/// Degenerates to the exact point reciprocal when `b == 0`. Kept for
/// fidelity to the text; see DESIGN.md for why [`recip`] is the default.
pub fn recip_literal(v: &StochasticValue) -> StochasticValue {
    assert!(
        v.mean() != 0.0, // tidy:allow(PP004): exact zero-mean guard before taking a reciprocal
        "reciprocal of a stochastic value with zero mean"
    );
    if v.is_point() {
        return StochasticValue::point(1.0 / v.mean());
    }
    StochasticValue::new(1.0 / v.mean(), 1.0 / v.half_width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn related_product_formula() {
        let a = StochasticValue::new(4.0, 0.5);
        let b = StochasticValue::new(3.0, 2.0);
        let p = mul_related(&a, &b);
        assert_eq!(p.mean(), 12.0);
        // 0.5*3 + 2*4 + 0.5*2 = 1.5 + 8 + 1 = 10.5
        assert!((p.half_width() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn related_product_is_interval_product_for_positive_factors() {
        // For positive means, the related half-width equals the upper
        // expansion of interval arithmetic: (X+a)(Y+b) - XY.
        let a = StochasticValue::new(5.0, 1.0);
        let b = StochasticValue::new(7.0, 2.0);
        let p = mul_related(&a, &b);
        let interval_hi = a.hi() * b.hi();
        assert!((p.hi() - interval_hi).abs() < 1e-12);
    }

    #[test]
    fn unrelated_product_formula() {
        let a = StochasticValue::new(4.0, 0.4); // 10% relative
        let b = StochasticValue::new(5.0, 1.0); // 20% relative
        let p = mul_unrelated(&a, &b);
        assert_eq!(p.mean(), 20.0);
        let rel = (0.1f64 * 0.1 + 0.2 * 0.2).sqrt();
        assert!((p.half_width() - 20.0 * rel).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_product_is_zero_point() {
        let z = StochasticValue::new(0.0, 1.0);
        let b = StochasticValue::new(5.0, 1.0);
        let p = mul_unrelated(&z, &b);
        assert!(p.is_point());
        assert_eq!(p.mean(), 0.0);
    }

    #[test]
    fn point_times_stochastic_matches_table2_row1() {
        // P(X ± a) = PX ± Pa — both rules must reproduce it.
        let x = StochasticValue::new(6.0, 1.2);
        let p = StochasticValue::point(3.0);
        let related = mul_related(&x, &p);
        assert_eq!(related.mean(), 18.0);
        assert!((related.half_width() - 3.6).abs() < 1e-12);
        let unrelated = mul_unrelated(&x, &p);
        assert_eq!(unrelated.mean(), 18.0);
        assert!((unrelated.half_width() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn recip_first_order() {
        let v = StochasticValue::new(4.0, 0.8);
        let r = recip(&v);
        assert_eq!(r.mean(), 0.25);
        assert!((r.half_width() - 0.05).abs() < 1e-12);
        // Relative width preserved: 0.8/4 = 0.05/0.25 = 20%.
        assert!((r.percent().unwrap() - v.percent().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn recip_literal_footnote() {
        let v = StochasticValue::new(4.0, 0.5);
        let r = recip_literal(&v);
        assert_eq!(r.mean(), 0.25);
        assert_eq!(r.half_width(), 2.0);
        // Point value degenerates cleanly.
        let p = recip_literal(&StochasticValue::point(4.0));
        assert!(p.is_point());
        assert_eq!(p.mean(), 0.25);
    }

    #[test]
    #[should_panic]
    fn recip_of_zero_mean_panics() {
        recip(&StochasticValue::new(0.0, 1.0));
    }

    #[test]
    fn division_pipeline() {
        // (X ± a) / (Y ± b) with the unrelated rule: relative errors add in
        // quadrature, since recip preserves relative width.
        let num = StochasticValue::new(100.0, 10.0); // 10%
        let den = StochasticValue::new(4.0, 0.4); // 10%
        let q = num.div(&den, crate::ops::Dependence::Unrelated);
        assert!((q.mean() - 25.0).abs() < 1e-12);
        let rel = q.half_width() / q.mean();
        assert!((rel - (0.01f64 + 0.01).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn unrelated_product_matches_monte_carlo_for_low_variance() {
        // "high quality [low variance] information": the RSS rule should
        // match sampled moments closely when relative errors are small.
        let a = StochasticValue::new(12.0, 0.6); // 5%
        let b = StochasticValue::new(5.0, 0.5); // 10%
        let predicted = mul_unrelated(&a, &b);
        let (na, nb) = (a.to_normal(), b.to_normal());
        let mut rng = StdRng::seed_from_u64(99);
        let mut s = Summary::new();
        for _ in 0..60_000 {
            s.push(na.sample(&mut rng) * nb.sample(&mut rng));
        }
        assert!((s.mean() - predicted.mean()).abs() / predicted.mean() < 0.005);
        assert!((2.0 * s.sd() - predicted.half_width()).abs() / predicted.half_width() < 0.02);
    }

    #[test]
    fn product_of_normals_is_long_tailed() {
        // §2.3.2: "the product of stochastic values with normal
        // distributions does not itself have a normal distribution. Rather,
        // it is long-tailed." Verify positive skew by sampling.
        let a = StochasticValue::new(10.0, 6.0);
        let b = StochasticValue::new(10.0, 6.0);
        let (na, nb) = (a.to_normal(), b.to_normal());
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = Summary::new();
        for _ in 0..60_000 {
            s.push(na.sample(&mut rng) * nb.sample(&mut rng));
        }
        assert!(s.skewness() > 0.2, "product should be right-skewed");
    }
}
