//! Special functions needed by the distribution machinery.
//!
//! The paper leans on standard normal-distribution statistics (Larsen & Marx,
//! ch. 7.3). Since no statistics crate is available offline, the error
//! function, its complement, and the standard-normal quantile are implemented
//! here from scratch via the regularized incomplete gamma function
//! (`erf(x) = P(1/2, x^2)`), which is accurate to near machine precision.

/// Natural log of the gamma function (Lanczos approximation, `g = 5`,
/// accurate to ~1e-15 for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
///
/// Series representation for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`), in double precision.
pub fn gammp(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gammp domain error: a={a}, x={x}");
    // tidy:allow(PP004): exact endpoint identity of the incomplete gamma
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gser(a, x)
    } else {
        1.0 - gcf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn gammq(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gammq domain error: a={a}, x={x}");
    // tidy:allow(PP004): exact endpoint identity of the incomplete gamma
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gser(a, x)
    } else {
        gcf(a, x)
    }
}

/// Series evaluation of `P(a, x)`.
fn gser(a: f64, x: f64) -> f64 {
    const ITMAX: usize = 500;
    const EPS: f64 = 3e-16;
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..ITMAX {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Continued-fraction evaluation of `Q(a, x)` (modified Lentz).
fn gcf(a: f64, x: f64) -> f64 {
    const ITMAX: usize = 500;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=ITMAX {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// The error function `erf(x) = 2/sqrt(pi) * Int_0^x exp(-t^2) dt`,
/// computed as `sign(x) * P(1/2, x^2)`. Exactly odd, `erf(0) == 0`.
pub fn erf(x: f64) -> f64 {
    // tidy:allow(PP004): erf(0) is exactly 0 by symmetry
    if x == 0.0 {
        0.0
    } else if x < 0.0 {
        -gammp(0.5, x * x)
    } else {
        gammp(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, computed
/// without cancellation in the upper tail (`Q(1/2, x^2)` for `x > 0`).
pub fn erfc(x: f64) -> f64 {
    // tidy:allow(PP004): erfc(0) is exactly 1 by symmetry
    if x == 0.0 {
        1.0
    } else if x < 0.0 {
        1.0 + gammp(0.5, x * x)
    } else {
        gammq(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Phi(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function `phi(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Peter Acklam's rational approximation (relative error ~1.15e-9), followed
/// by a single Halley refinement step against [`std_normal_cdf`], which drives
/// the error to near machine precision away from the extreme tails.
///
/// # Panics
///
/// Panics if `p` is not in the open interval `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must lie in (0,1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x <- x - u/(1 + x u / 2) with u = (Phi(x)-p)/phi(x).
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = Gamma(2) = 1, Gamma(1/2) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gammp_gammq_complement() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for i in 0..40 {
                let x = 0.25 * i as f64;
                assert!(
                    (gammp(a, x) + gammq(a, x) - 1.0).abs() < 1e-12,
                    "a={a}, x={x}"
                );
            }
        }
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(3.5) - 0.999_999_256_901_627_7).abs() < 1e-12);
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..100 {
            let x = -3.0 + 0.06 * i as f64;
            assert!((erf(x) + erf(-x)).abs() < 1e-14, "erf not odd at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in 0..60 {
            let x = -3.0 + 0.1 * i as f64;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_tail_avoids_cancellation() {
        // erfc(6) ~ 2.1519736712498913e-17: representable, and computed via
        // the continued fraction rather than 1 - erf.
        let v = erfc(6.0);
        assert!(v > 0.0);
        assert!((v / 2.151_973_671_249_891_3e-17 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_known_values() {
        assert_eq!(std_normal_cdf(0.0), 0.5);
        // Phi(1.96) ~ 0.975, the canonical two-sided 95% point.
        assert!((std_normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        // Phi(2) ~ 0.97725: the "two standard deviations covers ~95%" rule.
        assert!((std_normal_cdf(2.0) - 0.977_249_868_051_820_8).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(x) - p).abs() < 1e-12,
                "round-trip failed at p={p}: x={x}"
            );
        }
    }

    #[test]
    fn quantile_symmetry() {
        for i in 1..500 {
            let p = i as f64 / 1000.0;
            let lo = std_normal_quantile(p);
            let hi = std_normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-10, "asymmetric at p={p}");
        }
    }

    #[test]
    fn quantile_tail_values() {
        // z_{0.975} = 1.959964..., z_{0.995} = 2.575829...
        assert!((std_normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-10);
        assert!((std_normal_quantile(0.995) - 2.575_829_303_548_901).abs() < 1e-10);
        assert!((std_normal_quantile(1e-6) + 4.753_424_308_822_899).abs() < 1e-8);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        std_normal_quantile(0.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_one() {
        std_normal_quantile(1.0);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoidal check over [-8, 8].
        let n = 4000;
        let (a, b) = (-8.0, 8.0);
        let h = (b - a) / n as f64;
        let mut sum = 0.5 * (std_normal_pdf(a) + std_normal_pdf(b));
        for i in 1..n {
            sum += std_normal_pdf(a + i as f64 * h);
        }
        assert!((sum * h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_is_derivative_of_cdf() {
        for i in 0..30 {
            let x = -3.0 + 0.2 * i as f64;
            let h = 1e-6;
            let num = (std_normal_cdf(x + h) - std_normal_cdf(x - h)) / (2.0 * h);
            assert!((num - std_normal_pdf(x)).abs() < 1e-8, "at {x}");
        }
    }
}
