//! Summary statistics: numerically stable moments, order statistics, and
//! streaming accumulation.
//!
//! Fitting stochastic values to measured data (Section 2.1 of the paper)
//! needs means, standard deviations, medians, and quantiles of load traces,
//! bandwidth traces, and runtime histograms. Everything here is one-pass
//! (Welford / West) where possible so very long traces can be summarized
//! without a second sweep.

use serde::{Deserialize, Serialize};

/// Streaming moment accumulator (Welford's algorithm extended through the
/// fourth central moment), plus min/max tracking.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates every element of `data`.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in data {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "summary observation must be finite");
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let mean = self.mean + delta * nb / n;

        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Zero for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n - 1` denominator). Zero when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population variance (`n` denominator). Zero when `n == 0`.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness (`g1`, population form). Zero when undefined.
    pub fn skewness(&self) -> f64 {
        // tidy:allow(PP004): exact zero second moment means constant data
        if self.n < 2 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis (`g2`, population form). Zero when undefined.
    pub fn kurtosis(&self) -> f64 {
        // tidy:allow(PP004): exact zero second moment means constant data
        if self.n < 2 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation `sd / |mean|`; `None` for zero mean.
    pub fn cv(&self) -> Option<f64> {
        // tidy:allow(PP004): exact zero mean makes the ratio undefined
        if self.mean == 0.0 {
            None
        } else {
            Some(self.sd() / self.mean.abs())
        }
    }
}

/// Median of a sample. Returns `None` for an empty slice.
///
/// The median matters for long-tailed data, where the paper notes it sits
/// "several points below" the mean (Section 2.1.1).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Linearly interpolated sample quantile (type-7, the common default).
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over data that is already sorted ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Sample autocorrelation at the given lag (biased, normalized by the
/// population variance): `r_k = sum (x_i - m)(x_{i+k} - m) / sum (x_i - m)^2`.
/// Returns `None` when the series is shorter than `lag + 2` or constant.
pub fn autocorrelation(data: &[f64], lag: usize) -> Option<f64> {
    if data.len() < lag + 2 {
        return None;
    }
    let s = Summary::from_slice(data);
    let var = s.population_variance();
    if var <= 0.0 {
        return None;
    }
    let m = s.mean();
    let mut num = 0.0;
    for i in 0..data.len() - lag {
        num += (data[i] - m) * (data[i + lag] - m);
    }
    Some(num / (data.len() as f64 * var))
}

/// Integrated autocorrelation time in *samples*:
/// `tau = 1 + 2 sum_{k>=1} r_k`, summed until the first non-positive
/// autocorrelation (the standard initial-positive-sequence truncation).
/// Returns `None` for short or constant series. A white-noise series gives
/// ~1; a process with dwell `D` sampled at interval `h` gives ~`D/h`-scale
/// values.
pub fn integrated_autocorr_time(data: &[f64]) -> Option<f64> {
    if data.len() < 8 {
        return None;
    }
    let mut tau = 1.0;
    for k in 1..data.len() / 2 {
        match autocorrelation(data, k) {
            Some(r) if r > 0.0 => tau += 2.0 * r,
            _ => break,
        }
    }
    Some(tau)
}

/// Fraction of `actuals` that fall inside the corresponding prediction
/// interval. `pairs` yields `(lo, hi, actual)`.
pub fn interval_coverage(pairs: &[(f64, f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let inside = pairs
        .iter()
        .filter(|(lo, hi, v)| v >= lo && v <= hi)
        .count();
    inside as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = Summary::new();
        s1.push(3.5);
        assert_eq!(s1.mean(), 3.5);
        assert_eq!(s1.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.731).sin() * 5.0 + 3.0)
            .collect();
        let whole = Summary::from_slice(&all);
        let mut a = Summary::from_slice(&all[..37]);
        let b = Summary::from_slice(&all[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert!((a.skewness() - whole.skewness()).abs() < 1e-8);
        assert!((a.kurtosis() - whole.kurtosis()).abs() < 1e-7);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data has positive skew.
        let right = Summary::from_slice(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness() > 0.0);
        let left = Summary::from_slice(&[10.0, 10.0, 10.0, 10.0, 1.0]);
        assert!(left.skewness() < 0.0);
    }

    #[test]
    fn kurtosis_of_uniformish_data_is_negative() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let s = Summary::from_slice(&data);
        // Uniform distribution has excess kurtosis -1.2.
        assert!((s.kurtosis() + 1.2).abs() < 0.05);
    }

    #[test]
    fn median_and_quantiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&data, 0.0), Some(10.0));
        assert_eq!(quantile(&data, 1.0), Some(50.0));
        assert_eq!(quantile(&data, 0.25), Some(20.0));
        assert_eq!(quantile(&data, 0.375), Some(25.0));
    }

    #[test]
    fn coverage_counts_inclusive_bounds() {
        let pairs = [
            (0.0, 1.0, 0.5),
            (0.0, 1.0, 1.0),
            (0.0, 1.0, 0.0),
            (0.0, 1.0, 1.5),
        ];
        assert!((interval_coverage(&pairs) - 0.75).abs() < 1e-12);
        assert_eq!(interval_coverage(&[]), 0.0);
    }

    #[test]
    fn autocorrelation_of_white_noise_is_small() {
        let mut state = 99u64;
        let data: Vec<f64> = (0..4000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!(r1.abs() < 0.05, "r1 {r1}");
        let tau = integrated_autocorr_time(&data).unwrap();
        assert!(tau < 1.5, "tau {tau}");
    }

    #[test]
    fn autocorrelation_of_ar1_matches_phi() {
        // x_{t+1} = phi x_t + e_t has r_k = phi^k.
        let phi: f64 = 0.8;
        let mut x = 0.0;
        let mut state = 12345u64;
        let mut data = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            x = phi * x + u;
            data.push(x);
        }
        let r1 = autocorrelation(&data, 1).unwrap();
        assert!((r1 - phi).abs() < 0.03, "r1 {r1}");
        let r3 = autocorrelation(&data, 3).unwrap();
        assert!((r3 - phi.powi(3)).abs() < 0.05, "r3 {r3}");
        // tau = (1+phi)/(1-phi) = 9 for AR(1).
        let tau = integrated_autocorr_time(&data).unwrap();
        assert!((tau - 9.0).abs() < 2.0, "tau {tau}");
    }

    #[test]
    fn autocorrelation_degenerate_inputs() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
        assert!(autocorrelation(&[3.0; 50], 1).is_none());
        assert!(integrated_autocorr_time(&[1.0; 4]).is_none());
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]);
        assert!(s.cv().is_none());
        let t = Summary::from_slice(&[2.0, 4.0]);
        assert!(t.cv().is_some());
    }
}
