//! The stochastic value: a quantity reported as a range of likely behaviour.
//!
//! Following Section 2 of the paper, a stochastic value is a distribution
//! summarized as `X ± a`, where `X` is the mean and `a` is **two standard
//! deviations** of the underlying (assumed normal) distribution. Under
//! normality the interval `[X - a, X + a]` covers roughly 95% of observed
//! values. A *point value* is the degenerate case `a = 0` — "a stochastic
//! value in which the probability of X is 1" (paper, footnote 1).

use crate::dist::Normal;
use crate::special::std_normal_cdf;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantity represented as `mean ± half_width`, where `half_width` is two
/// standard deviations of the underlying distribution.
///
/// This is the paper's central abstraction: model parameters (bandwidth, CPU
/// load, benchmark times, …) and model *outputs* (predicted execution times)
/// are all `StochasticValue`s.
///
/// # Examples
///
/// ```
/// use prodpred_stochastic::StochasticValue;
///
/// // "bandwidth may be reported as 8 Mbits/second ± 2 Mbits/second"
/// let bw = StochasticValue::new(8.0, 2.0);
/// assert_eq!(bw.lo(), 6.0);
/// assert_eq!(bw.hi(), 10.0);
///
/// // "a load of 0.48 ± 10%" — percentage ranges translate to absolute ones
/// let load = StochasticValue::from_percent(0.48, 10.0);
/// assert!((load.half_width() - 0.048).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticValue {
    mean: f64,
    half_width: f64,
}

impl StochasticValue {
    /// Creates a stochastic value `mean ± half_width`.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is negative or either argument is non-finite.
    pub fn new(mean: f64, half_width: f64) -> Self {
        assert!(mean.is_finite(), "stochastic mean must be finite: {mean}");
        assert!(
            half_width.is_finite() && half_width >= 0.0,
            "stochastic half-width must be finite and non-negative: {half_width}"
        );
        Self { mean, half_width }
    }

    /// A point value: the degenerate stochastic value with zero width.
    pub fn point(value: f64) -> Self {
        Self::new(value, 0.0)
    }

    /// Builds a value from a percentage range, e.g. `12 s ± 30%`.
    ///
    /// The paper translates percentage ranges to absolute ranges
    /// algebraically (footnote 3): the half-width is `|mean| * percent/100`.
    pub fn from_percent(mean: f64, percent: f64) -> Self {
        assert!(percent >= 0.0, "percentage range must be non-negative");
        Self::new(mean, mean.abs() * percent / 100.0)
    }

    /// Builds a value from a mean and a *single* standard deviation.
    /// The stored half-width is `2 * sd`, per the paper's convention.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Self::new(mean, 2.0 * sd)
    }

    /// Summarizes a sample as a stochastic value: sample mean ± two sample
    /// standard deviations. Returns `None` for an empty sample.
    ///
    /// This is how measured data (load traces, benchmark repetitions) enters
    /// the model.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let summary = crate::stats::Summary::from_slice(samples);
        Some(Self::from_mean_sd(summary.mean(), summary.sd()))
    }

    /// The mean (the "center of the range").
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The half-width `a` of the interval — two standard deviations.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// One standard deviation of the underlying distribution.
    pub fn sd(&self) -> f64 {
        self.half_width / 2.0
    }

    /// Variance of the underlying distribution.
    pub fn variance(&self) -> f64 {
        let sd = self.sd();
        sd * sd
    }

    /// Lower endpoint `X - a`.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint `X + a`.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// The interval `(lo, hi)` as a tuple.
    pub fn range(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }

    /// The half-width as a percentage of the mean, when the mean is nonzero.
    pub fn percent(&self) -> Option<f64> {
        // tidy:allow(PP004): exact zero mean makes the ratio undefined
        if self.mean == 0.0 {
            None
        } else {
            Some(100.0 * self.half_width / self.mean.abs())
        }
    }

    /// `true` when this is a point value (zero width).
    pub fn is_point(&self) -> bool {
        self.half_width == 0.0 // tidy:allow(PP004): a point value has exactly zero half-width by construction
    }

    /// Whether `x` falls within the two-standard-deviation interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// The paper's footnote-6 error metric: "the error between a value *v*
    /// not in the range of a stochastic value `X ± a` is the minimum distance
    /// between *v* and `(X - a, X + a)`". Zero when `v` is inside the range.
    pub fn distance_outside(&self, v: f64) -> f64 {
        if v < self.lo() {
            self.lo() - v
        } else if v > self.hi() {
            v - self.hi()
        } else {
            0.0
        }
    }

    /// Relative version of [`distance_outside`](Self::distance_outside):
    /// distance divided by the actual value, as used for the paper's
    /// "maximum error of approximately 14%" style of statement.
    pub fn relative_error_outside(&self, v: f64) -> f64 {
        // tidy:allow(PP004): exact zero reference needs the absolute-error branch
        if v == 0.0 {
            if self.contains(0.0) {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.distance_outside(v) / v.abs()
        }
    }

    /// The normal distribution this value summarizes (`N(mean, sd^2)`).
    ///
    /// For a point value this is a degenerate distribution with zero
    /// variance; [`Normal`] handles that case.
    pub fn to_normal(&self) -> Normal {
        Normal::new(self.mean, self.sd())
    }

    /// The probability, under the normal assumption, that the quantity lies
    /// inside `[lo, hi]`. For a genuine normal this is ~0.9545.
    pub fn nominal_coverage(&self) -> f64 {
        if self.is_point() {
            1.0
        } else {
            std_normal_cdf(2.0) - std_normal_cdf(-2.0)
        }
    }

    /// Scales the value by a point constant: `c * (X ± a) = cX ± |c|a`.
    pub fn scale(&self, c: f64) -> Self {
        Self::new(c * self.mean, c.abs() * self.half_width)
    }

    /// Shifts the value by a point constant: `(X ± a) + p = (X + p) ± a`
    /// (Table 2, first row).
    pub fn shift(&self, p: f64) -> Self {
        Self::new(self.mean + p, self.half_width)
    }

    /// Negation `-(X ± a) = -X ± a`.
    pub fn neg(&self) -> Self {
        Self::new(-self.mean, self.half_width)
    }

    /// Widens (or narrows) the interval by a factor, keeping the mean.
    /// Useful for conservative scheduling policies.
    pub fn widen(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "widening factor must be non-negative");
        Self::new(self.mean, self.half_width * factor)
    }
}

impl Default for StochasticValue {
    /// The zero point value.
    fn default() -> Self {
        Self::point(0.0)
    }
}

impl From<f64> for StochasticValue {
    fn from(v: f64) -> Self {
        Self::point(v)
    }
}

impl fmt::Display for StochasticValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{:.4}", self.mean)
        } else {
            write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = StochasticValue::new(12.0, 0.6);
        assert_eq!(v.mean(), 12.0);
        assert_eq!(v.half_width(), 0.6);
        assert_eq!(v.sd(), 0.3);
        assert_eq!(v.lo(), 11.4);
        assert_eq!(v.hi(), 12.6);
        assert!(!v.is_point());
    }

    #[test]
    fn table1_machine_a_range() {
        // "12 seconds per unit of work ± 5% (or 11.4 to 12.6 seconds)"
        let a = StochasticValue::from_percent(12.0, 5.0);
        assert!((a.lo() - 11.4).abs() < 1e-12);
        assert!((a.hi() - 12.6).abs() < 1e-12);
    }

    #[test]
    fn table1_machine_b_range() {
        // "12 seconds ± 30% ... will vary over an interval from 8.4 to 15.6"
        let b = StochasticValue::from_percent(12.0, 30.0);
        assert!((b.lo() - 8.4).abs() < 1e-12);
        assert!((b.hi() - 15.6).abs() < 1e-12);
    }

    #[test]
    fn point_value_degenerates() {
        let p = StochasticValue::point(7.0);
        assert!(p.is_point());
        assert_eq!(p.lo(), 7.0);
        assert_eq!(p.hi(), 7.0);
        assert_eq!(p.nominal_coverage(), 1.0);
        assert!(p.contains(7.0));
        assert!(!p.contains(7.0001));
    }

    #[test]
    fn percent_round_trip() {
        let v = StochasticValue::from_percent(5.25, 15.238);
        assert!((v.percent().unwrap() - 15.238).abs() < 1e-9);
    }

    #[test]
    fn distance_outside_footnote6() {
        let v = StochasticValue::new(10.0, 2.0); // range (8, 12)
        assert_eq!(v.distance_outside(9.0), 0.0);
        assert_eq!(v.distance_outside(8.0), 0.0);
        assert_eq!(v.distance_outside(7.0), 1.0);
        assert_eq!(v.distance_outside(13.5), 1.5);
    }

    #[test]
    fn relative_error_outside() {
        let v = StochasticValue::new(10.0, 2.0);
        assert!((v.relative_error_outside(16.0) - 0.25).abs() < 1e-12);
        assert_eq!(v.relative_error_outside(11.0), 0.0);
    }

    #[test]
    fn from_samples_matches_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = StochasticValue::from_samples(&data).unwrap();
        assert!((v.mean() - 5.0).abs() < 1e-12);
        // sample sd (n-1) of this classic dataset is ~2.138
        assert!((v.sd() - 2.138_089_935).abs() < 1e-6);
        assert!(StochasticValue::from_samples(&[]).is_none());
    }

    #[test]
    fn scale_shift_neg() {
        let v = StochasticValue::new(4.0, 1.0);
        let s = v.scale(-2.0);
        assert_eq!(s.mean(), -8.0);
        assert_eq!(s.half_width(), 2.0);
        let t = v.shift(3.0);
        assert_eq!(t.mean(), 7.0);
        assert_eq!(t.half_width(), 1.0);
        let n = v.neg();
        assert_eq!(n.mean(), -4.0);
        assert_eq!(n.half_width(), 1.0);
    }

    #[test]
    fn nominal_coverage_is_two_sigma() {
        let v = StochasticValue::new(0.0, 2.0);
        assert!((v.nominal_coverage() - 0.954_499_7).abs() < 1e-5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", StochasticValue::point(3.0)), "3.0000");
        assert_eq!(
            format!("{}", StochasticValue::new(5.25, 0.8)),
            "5.2500 ± 0.8000"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_negative_half_width() {
        StochasticValue::new(1.0, -0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_mean() {
        StochasticValue::new(f64::NAN, 0.1);
    }
}
