//! Property-based tests for the stochastic-value algebra and the
//! distribution machinery.

use prodpred_stochastic::prelude::*;
use prodpred_stochastic::{special, sum_related, sum_unrelated};
use proptest::prelude::*;

/// A strategy generating well-conditioned stochastic values.
fn sv() -> impl Strategy<Value = StochasticValue> {
    ((-1.0e3f64..1.0e3), (0.0f64..1.0e2)).prop_map(|(m, h)| StochasticValue::new(m, h))
}

/// Stochastic values bounded away from zero (safe to divide by).
fn sv_nonzero() -> impl Strategy<Value = StochasticValue> {
    ((0.5f64..1.0e3), (0.0f64..1.0e2), any::<bool>())
        .prop_map(|(m, h, neg)| StochasticValue::new(if neg { -m } else { m }, h))
}

proptest! {
    // ---- degeneration: point values combine like plain arithmetic ----

    #[test]
    fn points_add_exactly(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let (pa, pb) = (StochasticValue::point(a), StochasticValue::point(b));
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let s = pa.add(&pb, dep);
            prop_assert!(s.is_point());
            prop_assert!((s.mean() - (a + b)).abs() < 1e-9);
        }
    }

    #[test]
    fn points_multiply_exactly(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let (pa, pb) = (StochasticValue::point(a), StochasticValue::point(b));
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let p = pa.mul(&pb, dep);
            prop_assert!(p.is_point());
            let expect = if (a == 0.0 || b == 0.0) && dep == Dependence::Unrelated {
                0.0
            } else {
                a * b
            };
            prop_assert!((p.mean() - expect).abs() < 1e-6);
        }
    }

    // ---- addition algebra ----

    #[test]
    fn addition_is_commutative(a in sv(), b in sv()) {
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let x = a.add(&b, dep);
            let y = b.add(&a, dep);
            prop_assert!((x.mean() - y.mean()).abs() < 1e-9);
            prop_assert!((x.half_width() - y.half_width()).abs() < 1e-9);
        }
    }

    #[test]
    fn addition_is_associative(a in sv(), b in sv(), c in sv()) {
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let x = a.add(&b, dep).add(&c, dep);
            let y = a.add(&b.add(&c, dep), dep);
            prop_assert!((x.mean() - y.mean()).abs() < 1e-6);
            prop_assert!((x.half_width() - y.half_width()).abs() < 1e-6);
        }
    }

    #[test]
    fn related_dominates_unrelated_width(a in sv(), b in sv()) {
        prop_assert!(a.add_related(&b).half_width() >= a.add_unrelated(&b).half_width() - 1e-12);
        prop_assert!(a.mul_related(&b).half_width() >= a.mul_unrelated(&b).half_width() - 1e-9);
    }

    #[test]
    fn sub_add_round_trip_means(a in sv(), b in sv()) {
        let d = a.sub(&b, Dependence::Unrelated);
        prop_assert!((d.mean() - (a.mean() - b.mean())).abs() < 1e-9);
    }

    #[test]
    fn sums_match_pairwise_folds(vals in proptest::collection::vec(sv(), 1..8)) {
        let rel = sum_related(&vals);
        let manual_mean: f64 = vals.iter().map(|v| v.mean()).sum();
        let manual_width: f64 = vals.iter().map(|v| v.half_width()).sum();
        prop_assert!((rel.mean() - manual_mean).abs() < 1e-6);
        prop_assert!((rel.half_width() - manual_width).abs() < 1e-6);

        let unrel = sum_unrelated(&vals);
        let manual_ss: f64 = vals.iter().map(|v| v.half_width().powi(2)).sum();
        prop_assert!((unrel.half_width() - manual_ss.sqrt()).abs() < 1e-6);
    }

    // ---- multiplication algebra ----

    #[test]
    fn multiplication_is_commutative(a in sv(), b in sv()) {
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let x = a.mul(&b, dep);
            let y = b.mul(&a, dep);
            prop_assert!((x.mean() - y.mean()).abs() < 1e-6);
            prop_assert!((x.half_width() - y.half_width()).abs() < 1e-6);
        }
    }

    #[test]
    fn scaling_matches_point_multiplication(a in sv(), c in -100.0f64..100.0) {
        let scaled = a.scale(c);
        let via_mul = a.mul_related(&StochasticValue::point(c));
        prop_assert!((scaled.mean() - via_mul.mean()).abs() < 1e-9);
        prop_assert!((scaled.half_width() - via_mul.half_width()).abs() < 1e-9);
    }

    #[test]
    fn recip_preserves_relative_width(a in sv_nonzero()) {
        let r = a.recip();
        let rel_a = a.half_width() / a.mean().abs();
        let rel_r = r.half_width() / r.mean().abs();
        prop_assert!((rel_a - rel_r).abs() < 1e-9);
    }

    #[test]
    fn division_by_self_is_near_one(a in sv_nonzero()) {
        let q = a.div(&a, Dependence::Unrelated);
        prop_assert!((q.mean() - 1.0).abs() < 1e-9);
    }

    // ---- interval semantics ----

    #[test]
    fn mean_is_always_contained(a in sv()) {
        prop_assert!(a.contains(a.mean()));
        prop_assert_eq!(a.distance_outside(a.mean()), 0.0);
    }

    #[test]
    fn distance_outside_iff_not_contained(a in sv(), x in -2e3f64..2e3) {
        let d = a.distance_outside(x);
        prop_assert_eq!(d == 0.0, a.contains(x));
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn widen_monotone(a in sv(), f in 1.0f64..10.0, x in -2e3f64..2e3) {
        // Widening can only increase coverage.
        if a.contains(x) {
            prop_assert!(a.widen(f).contains(x));
        }
    }

    // ---- group operations ----

    #[test]
    fn max_by_mean_dominates_all_means(vals in proptest::collection::vec(sv(), 1..10)) {
        let m = max_of(&vals, MaxStrategy::ByMean);
        for v in &vals {
            prop_assert!(m.mean() >= v.mean());
        }
    }

    #[test]
    fn clark_max_upper_bounds_every_mean(vals in proptest::collection::vec(sv(), 1..6)) {
        let m = max_of(&vals, MaxStrategy::Clark);
        for v in &vals {
            // E[max] >= E[X_i] for every i, with tolerance for the
            // pairwise-folded approximation.
            prop_assert!(m.mean() >= v.mean() - 1e-6);
        }
    }

    #[test]
    fn min_max_duality(vals in proptest::collection::vec(sv(), 1..10)) {
        let mn = min_of(&vals, MaxStrategy::ByMean);
        for v in &vals {
            prop_assert!(mn.mean() <= v.mean());
        }
    }

    // ---- distributions ----

    #[test]
    fn normal_quantile_cdf_round_trip(mu in -100.0f64..100.0, sigma in 0.01f64..50.0, p in 0.001f64..0.999) {
        let n = Normal::new(mu, sigma);
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(mu in -10.0f64..10.0, sigma in 0.01f64..5.0, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let n = Normal::new(mu, sigma);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-15);
    }

    #[test]
    fn erf_bounds(x in -20.0f64..20.0) {
        let e = special::erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((special::erf(x) + special::erf(-x)).abs() < 1e-13);
    }

    // ---- summaries ----

    #[test]
    fn summary_merge_matches_whole(data in proptest::collection::vec(-1e4f64..1e4, 2..200), split in 0usize..200) {
        let split = split.min(data.len());
        let whole = Summary::from_slice(&data);
        let mut left = Summary::from_slice(&data[..split]);
        left.merge(&Summary::from_slice(&data[split..]));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() / (1.0 + whole.variance()) < 1e-6);
    }

    #[test]
    fn summary_bounds_hold(data in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
        let s = Summary::from_slice(&data);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn histogram_conserves_observations(data in proptest::collection::vec(-100.0f64..100.0, 1..200), bins in 1usize..32) {
        let mut h = Histogram::new(-50.0, 50.0, bins);
        h.extend(data.iter().copied());
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.below_range() + h.above_range(), data.len() as u64);
    }

    #[test]
    fn from_samples_contains_mean(data in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
        let v = StochasticValue::from_samples(&data).unwrap();
        let s = Summary::from_slice(&data);
        prop_assert!((v.mean() - s.mean()).abs() < 1e-9);
        prop_assert!(v.contains(s.mean()));
    }
}
