//! Communication component models (paper Section 2.2.1).
//!
//! ```text
//! RedComm_p   = SendLR_p + ReceLR_p
//! BlackComm_p = SendLR_p + ReceLR_p
//! SendLR_p    = PtToPt(p, p+1) + PtToPt(p, p-1)
//! ReceLR_p    = PtToPt(p+1, p) + PtToPt(p-1, p)
//! PtToPt(x,y) = NumElt * Size(Elt) / (BWAvail * DedBW(x, y))   [+ latency]
//! ```
//!
//! (The published text's fraction is typeset ambiguously; the
//! dimensionally consistent reading — bytes over effective bytes/second —
//! is implemented, with an optional per-message latency term.)

use crate::param::Param;
use prodpred_stochastic::{Dependence, StochasticValue};
use serde::{Deserialize, Serialize};

/// Parameters of the point-to-point transfer model, shared across a
/// homogeneous segment (the paper's 10 Mbit ethernet).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PtToPtModel {
    /// `Size(Elt)`: bytes per element (point value, compile-time).
    pub size_elt: f64,
    /// `DedBW`: dedicated bandwidth in bytes/second (point value,
    /// measured statically).
    pub ded_bw: Param,
    /// `BWAvail`: fraction of dedicated bandwidth available at run time
    /// (stochastic, from the NWS).
    pub bw_avail: Param,
    /// Per-message latency in seconds (point value).
    pub latency: f64,
    /// Dependence assumption when combining transfer terms. The paper
    /// notes bandwidth-related quantities are *related* (heavy traffic
    /// moves them together), so `Related` is the conservative default.
    pub dependence: Dependence,
}

impl PtToPtModel {
    /// Transfer-time component for a message of `num_elt` elements:
    /// `latency + num_elt * size / (bw_avail * ded_bw)`.
    pub fn pt_to_pt(&self, num_elt: Param) -> StochasticValue {
        let bytes = num_elt.value().scale(self.size_elt);
        let eff_bw = self
            .bw_avail
            .value()
            .mul(&self.ded_bw.value(), self.dependence);
        bytes.div(&eff_bw, self.dependence).shift(self.latency)
    }
}

/// The position of a processor in the strip chain determines its
/// neighbour count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbours {
    /// Has a strip above (processor `p - 1`).
    pub up: bool,
    /// Has a strip below (processor `p + 1`).
    pub down: bool,
}

impl Neighbours {
    /// Neighbour layout for processor `p` of `n_procs` in a chain.
    pub fn of(p: usize, n_procs: usize) -> Self {
        assert!(p < n_procs);
        Self {
            up: p > 0,
            down: p + 1 < n_procs,
        }
    }

    /// Number of neighbours (0, 1, or 2).
    pub fn count(&self) -> usize {
        usize::from(self.up) + usize::from(self.down)
    }
}

/// Per-processor, per-phase communication component:
/// `SendLR_p + ReceLR_p`, each a sum of the point-to-point transfers with
/// the processor's chain neighbours.
///
/// `ghost_elems` is the elements per ghost-row message (`N` for an
/// `N x N` grid).
pub fn phase_comm(
    model: &PtToPtModel,
    neighbours: Neighbours,
    ghost_elems: Param,
) -> StochasticValue {
    let mut terms: Vec<StochasticValue> = Vec::with_capacity(4);
    // SendLR: PtToPt(p, p+1) + PtToPt(p, p-1).
    if neighbours.down {
        terms.push(model.pt_to_pt(ghost_elems));
    }
    if neighbours.up {
        terms.push(model.pt_to_pt(ghost_elems));
    }
    // ReceLR: PtToPt(p+1, p) + PtToPt(p-1, p).
    if neighbours.down {
        terms.push(model.pt_to_pt(ghost_elems));
    }
    if neighbours.up {
        terms.push(model.pt_to_pt(ghost_elems));
    }
    if terms.is_empty() {
        return StochasticValue::point(0.0);
    }
    terms
        .into_iter()
        .reduce(|a, b| a.add(&b, model.dependence))
        .expect("non-empty") // tidy:allow(PP003): terms always contains the latency term
}

/// Generic per-phase communication component: the sum of the point-to-
/// point transfers for an arbitrary set of messages (element counts).
/// Covers non-strip layouts — a 2D block exchanges row segments with
/// vertical neighbours and column segments with horizontal ones.
pub fn phase_comm_messages(model: &PtToPtModel, message_elements: &[f64]) -> StochasticValue {
    if message_elements.is_empty() {
        return StochasticValue::point(0.0);
    }
    message_elements
        .iter()
        .map(|&e| model.pt_to_pt(Param::point(e)))
        .reduce(|a, b| a.add(&b, model.dependence))
        .expect("non-empty") // tidy:allow(PP003): callers pass at least one element count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PtToPtModel {
        PtToPtModel {
            size_elt: 8.0,
            ded_bw: Param::point(1.25e6),
            bw_avail: Param::stochastic(StochasticValue::new(0.5, 0.1)),
            latency: 1.0e-3,
            dependence: Dependence::Related,
        }
    }

    #[test]
    fn pt_to_pt_dimensional_sanity() {
        // 1000 elements * 8 B = 8 kB at 0.5 * 1.25e6 B/s = 12.8 ms + 1 ms.
        let v = model().pt_to_pt(Param::point(1000.0));
        assert!((v.mean() - (8000.0 / 0.625e6 + 1.0e-3)).abs() < 1e-9);
        assert!(!v.is_point(), "bandwidth uncertainty must propagate");
    }

    #[test]
    fn pt_to_pt_point_bandwidth_is_point() {
        let m = PtToPtModel {
            bw_avail: Param::point(0.5),
            ..model()
        };
        assert!(m.pt_to_pt(Param::point(100.0)).is_point());
    }

    #[test]
    fn wider_bandwidth_uncertainty_widens_transfer() {
        let narrow = model().pt_to_pt(Param::point(1000.0));
        let m_wide = PtToPtModel {
            bw_avail: Param::stochastic(StochasticValue::new(0.5, 0.2)),
            ..model()
        };
        let wide = m_wide.pt_to_pt(Param::point(1000.0));
        assert!(wide.half_width() > narrow.half_width());
    }

    #[test]
    fn neighbours_chain_layout() {
        assert_eq!(
            Neighbours::of(0, 4),
            Neighbours {
                up: false,
                down: true
            }
        );
        assert_eq!(
            Neighbours::of(1, 4),
            Neighbours {
                up: true,
                down: true
            }
        );
        assert_eq!(
            Neighbours::of(3, 4),
            Neighbours {
                up: true,
                down: false
            }
        );
        assert_eq!(
            Neighbours::of(0, 1),
            Neighbours {
                up: false,
                down: false
            }
        );
        assert_eq!(Neighbours::of(1, 4).count(), 2);
    }

    #[test]
    fn interior_processor_does_double_the_comm() {
        let m = model();
        let ghost = Param::point(1000.0);
        let edge = phase_comm(&m, Neighbours::of(0, 4), ghost);
        let interior = phase_comm(&m, Neighbours::of(1, 4), ghost);
        assert!((interior.mean() / edge.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lone_processor_no_comm() {
        let v = phase_comm(&model(), Neighbours::of(0, 1), Param::point(1000.0));
        assert!(v.is_point());
        assert_eq!(v.mean(), 0.0);
    }

    #[test]
    fn message_list_comm_generalizes_strip_comm() {
        // A strip interior processor's phase comm equals the message-list
        // form with four equal ghost rows.
        let m = model();
        let ghost = Param::point(1000.0);
        let strip = phase_comm(&m, Neighbours::of(1, 4), ghost);
        let list = phase_comm_messages(&m, &[1000.0; 4]);
        assert!((strip.mean() - list.mean()).abs() < 1e-12);
        assert!((strip.half_width() - list.half_width()).abs() < 1e-12);
        // Empty message list is free.
        assert!(phase_comm_messages(&m, &[]).is_point());
    }

    #[test]
    fn related_sum_widths_add() {
        let m = model();
        let ghost = Param::point(1000.0);
        let single = m.pt_to_pt(ghost);
        let edge = phase_comm(&m, Neighbours::of(0, 2), ghost);
        // Edge processor: send + receive = 2 transfers, related widths add.
        assert!((edge.half_width() - 2.0 * single.half_width()).abs() < 1e-9);
    }
}
