//! Computation component models (paper Section 2.2.1).
//!
//! Two standard estimates of per-strip computation time:
//!
//! ```text
//! Comp_p1 = NumElt_p * Op(p, Elt) * CPU_p     (operation counting)
//! Comp_p2 = NumElt_p * BM(Elt_p)              (benchmarking)
//! ```
//!
//! and the production form the experiments use — benchmark time divided by
//! the measured CPU availability:
//!
//! ```text
//! RedComp_p = Comp_p2 / load    BlackComp_p = Comp_p2 / load
//! ```

use crate::param::Param;
use prodpred_stochastic::{Dependence, StochasticValue};
use serde::{Deserialize, Serialize};

/// Operation-counting computation model (`Comp_p1`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OpCountModel {
    /// `Op(p, Elt)`: operations per element.
    pub ops_per_elt: Param,
    /// `CPU_p`: seconds per operation.
    pub secs_per_op: Param,
}

impl OpCountModel {
    /// Dedicated computation time for `num_elt` elements.
    pub fn dedicated(&self, num_elt: Param, dep: Dependence) -> StochasticValue {
        num_elt
            .value()
            .mul(&self.ops_per_elt.value(), dep)
            .mul(&self.secs_per_op.value(), dep)
    }
}

/// Benchmark computation model (`Comp_p2`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BenchmarkModel {
    /// `BM(Elt_p)`: benchmarked seconds per element on processor `p`.
    pub bm_secs_per_elt: Param,
}

impl BenchmarkModel {
    /// Dedicated computation time for `num_elt` elements.
    pub fn dedicated(&self, num_elt: Param, dep: Dependence) -> StochasticValue {
        num_elt.value().mul(&self.bm_secs_per_elt.value(), dep)
    }

    /// Production computation time: dedicated time divided by the CPU
    /// availability ("For CPU load we used measurements supplied by the
    /// Network Weather Service that indicated the percentage of CPU
    /// available to execute the application").
    pub fn production(&self, num_elt: Param, load: Param, dep: Dependence) -> StochasticValue {
        self.dedicated(num_elt, dep).div(&load.value(), dep)
    }
}

/// One phase's computation component for processor `p`: half the strip's
/// elements have each colour, so `RedComp_p = (elements/2) * BM / load`.
pub fn phase_comp(
    bm: &BenchmarkModel,
    strip_elements: f64,
    load: Param,
    dep: Dependence,
) -> StochasticValue {
    bm.production(Param::point(strip_elements / 2.0), load, dep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_dedicated_scales() {
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::point(2.0e-6),
        };
        let v = bm.dedicated(Param::point(1.0e6), Dependence::Unrelated);
        assert!(v.is_point());
        assert!((v.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn production_divides_by_load() {
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::point(1.0e-6),
        };
        let load = Param::stochastic(StochasticValue::new(0.48, 0.05));
        let v = bm.production(Param::point(1.0e6), load, Dependence::Unrelated);
        // Mean: 1 s / 0.48 = 2.083 s.
        assert!((v.mean() - 1.0 / 0.48).abs() < 1e-9);
        // Relative width preserved through the reciprocal: 0.05/0.48.
        let rel = v.half_width() / v.mean();
        assert!((rel - 0.05 / 0.48).abs() < 1e-9);
    }

    #[test]
    fn op_count_agrees_with_benchmark_when_consistent() {
        // BM = Op * CPU: the two models must agree on dedicated time.
        let op = OpCountModel {
            ops_per_elt: Param::point(10.0),
            secs_per_op: Param::point(2.0e-7),
        };
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::point(2.0e-6),
        };
        let n = Param::point(5.0e5);
        let a = op.dedicated(n, Dependence::Unrelated);
        let b = bm.dedicated(n, Dependence::Unrelated);
        assert!((a.mean() - b.mean()).abs() < 1e-9);
    }

    #[test]
    fn phase_comp_halves_elements() {
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::point(1.0e-6),
        };
        let full = bm.production(
            Param::point(1.0e6),
            Param::point(1.0),
            Dependence::Unrelated,
        );
        let phase = phase_comp(&bm, 1.0e6, Param::point(1.0), Dependence::Unrelated);
        assert!((phase.mean() * 2.0 - full.mean()).abs() < 1e-12);
    }

    #[test]
    fn stochastic_benchmark_widens_result() {
        // Benchmarks themselves can be stochastic values (Figure 1!).
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::stochastic(StochasticValue::from_percent(1.0e-6, 10.0)),
        };
        let v = bm.dedicated(Param::point(1.0e6), Dependence::Unrelated);
        assert!(!v.is_point());
        assert!((v.percent().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lower_load_means_longer_time() {
        let bm = BenchmarkModel {
            bm_secs_per_elt: Param::point(1.0e-6),
        };
        let busy = phase_comp(
            &bm,
            1.0e6,
            Param::stochastic(StochasticValue::new(0.25, 0.02)),
            Dependence::Unrelated,
        );
        let quiet = phase_comp(
            &bm,
            1.0e6,
            Param::stochastic(StochasticValue::new(0.9, 0.02)),
            Dependence::Unrelated,
        );
        assert!(busy.mean() > quiet.mean() * 3.0);
    }
}
