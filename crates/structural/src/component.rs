//! The component-model algebra.
//!
//! "Structural models are composed of component models and equations
//! representing their interactions. Component models are defined (possibly
//! recursively) as combinations of model parameters ... and/or other
//! component models" (paper Section 2.2). [`Component`] is that recursive
//! definition as an expression tree; evaluation folds the tree with the
//! stochastic-value arithmetic of Table 2.

use crate::param::Param;
use prodpred_stochastic::{max_of, min_of, Dependence, MaxStrategy, StochasticValue};

/// A component model: an expression over parameters and sub-components.
#[derive(Debug, Clone)]
pub enum Component {
    /// A leaf parameter.
    Param(Param),
    /// Sum of sub-components under a dependence assumption.
    Sum(Vec<Component>, Dependence),
    /// Product of sub-components under a dependence assumption.
    Product(Vec<Component>, Dependence),
    /// Quotient of two sub-components.
    Quotient(Box<Component>, Box<Component>, Dependence),
    /// Point scaling.
    Scale(f64, Box<Component>),
    /// Group maximum under a strategy (paper Section 2.3.3).
    Max(Vec<Component>, MaxStrategy),
    /// Group minimum under a strategy.
    Min(Vec<Component>, MaxStrategy),
}

impl Component {
    /// A point-parameter leaf.
    pub fn point(v: f64) -> Self {
        Component::Param(Param::point(v))
    }

    /// A stochastic-parameter leaf.
    pub fn stochastic(v: StochasticValue) -> Self {
        Component::Param(Param::stochastic(v))
    }

    /// Evaluates the tree to a stochastic value.
    ///
    /// # Panics
    ///
    /// Panics on an empty `Sum`/`Product`/`Max`/`Min`, or division by a
    /// zero-mean component (propagated from the arithmetic layer).
    pub fn evaluate(&self) -> StochasticValue {
        match self {
            Component::Param(p) => p.value(),
            Component::Sum(parts, dep) => {
                assert!(!parts.is_empty(), "empty Sum component");
                parts
                    .iter()
                    .map(Component::evaluate)
                    .reduce(|a, b| a.add(&b, *dep))
                    .expect("non-empty") // tidy:allow(PP003): Sum nodes are built with at least one child
            }
            Component::Product(parts, dep) => {
                assert!(!parts.is_empty(), "empty Product component");
                parts
                    .iter()
                    .map(Component::evaluate)
                    .reduce(|a, b| a.mul(&b, *dep))
                    .expect("non-empty") // tidy:allow(PP003): Product nodes are built with at least one child
            }
            Component::Quotient(num, den, dep) => num.evaluate().div(&den.evaluate(), *dep),
            Component::Scale(c, inner) => inner.evaluate().scale(*c),
            Component::Max(parts, strategy) => {
                assert!(!parts.is_empty(), "empty Max component");
                let vals: Vec<StochasticValue> = parts.iter().map(Component::evaluate).collect();
                max_of(&vals, *strategy)
            }
            Component::Min(parts, strategy) => {
                assert!(!parts.is_empty(), "empty Min component");
                let vals: Vec<StochasticValue> = parts.iter().map(Component::evaluate).collect();
                min_of(&vals, *strategy)
            }
        }
    }

    /// Evaluates with every stochastic parameter collapsed to its mean —
    /// the conventional point-valued prediction baseline.
    pub fn evaluate_point(&self) -> f64 {
        self.collapse().evaluate().mean()
    }

    /// A copy of the tree with all parameters collapsed to point values.
    pub fn collapse(&self) -> Component {
        match self {
            Component::Param(p) => Component::Param(p.to_point()),
            Component::Sum(parts, dep) => {
                Component::Sum(parts.iter().map(Component::collapse).collect(), *dep)
            }
            Component::Product(parts, dep) => {
                Component::Product(parts.iter().map(Component::collapse).collect(), *dep)
            }
            Component::Quotient(n, d, dep) => {
                Component::Quotient(Box::new(n.collapse()), Box::new(d.collapse()), *dep)
            }
            Component::Scale(c, inner) => Component::Scale(*c, Box::new(inner.collapse())),
            Component::Max(parts, s) => {
                Component::Max(parts.iter().map(Component::collapse).collect(), *s)
            }
            Component::Min(parts, s) => {
                Component::Min(parts.iter().map(Component::collapse).collect(), *s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_evaluation() {
        let c = Component::point(4.0);
        assert_eq!(c.evaluate().mean(), 4.0);
        assert!(c.evaluate().is_point());
    }

    #[test]
    fn latency_plus_bandwidth_model() {
        // Comm = Latency + MsgSize / Bandwidth (the paper's §2.3.1 example).
        let comm = Component::Sum(
            vec![
                Component::stochastic(StochasticValue::new(0.002, 0.0005)),
                Component::Quotient(
                    Box::new(Component::point(1.0e6)),
                    Box::new(Component::stochastic(StochasticValue::new(8.0e6, 2.0e6))),
                    Dependence::Related,
                ),
            ],
            Dependence::Related,
        );
        let v = comm.evaluate();
        assert!((v.mean() - (0.002 + 0.125)).abs() < 1e-9);
        assert!(!v.is_point());
        // Related sum: widths add.
        let bw_rel = 2.0 / 8.0;
        assert!((v.half_width() - (0.0005 + 0.125 * bw_rel)).abs() < 1e-9);
    }

    #[test]
    fn recursive_max_of_sums() {
        let make_proc = |comp: f64, comm: f64, width: f64| {
            Component::Sum(
                vec![
                    Component::stochastic(StochasticValue::new(comp, width)),
                    Component::point(comm),
                ],
                Dependence::Unrelated,
            )
        };
        let model = Component::Max(
            vec![
                make_proc(10.0, 1.0, 0.5),
                make_proc(12.0, 1.0, 2.0),
                make_proc(8.0, 1.0, 0.1),
            ],
            MaxStrategy::ByMean,
        );
        let v = model.evaluate();
        assert_eq!(v.mean(), 13.0);
        assert_eq!(v.half_width(), 2.0);
    }

    #[test]
    fn collapse_gives_point_baseline() {
        let c = Component::Product(
            vec![
                Component::stochastic(StochasticValue::new(3.0, 1.0)),
                Component::stochastic(StochasticValue::new(4.0, 1.0)),
            ],
            Dependence::Unrelated,
        );
        assert!(!c.evaluate().is_point());
        assert_eq!(c.evaluate_point(), 12.0);
        assert!(c.collapse().evaluate().is_point());
    }

    #[test]
    fn scale_component() {
        let c = Component::Scale(
            3.0,
            Box::new(Component::stochastic(StochasticValue::new(2.0, 0.5))),
        );
        let v = c.evaluate();
        assert_eq!(v.mean(), 6.0);
        assert_eq!(v.half_width(), 1.5);
    }

    #[test]
    fn min_component() {
        let c = Component::Min(
            vec![Component::point(5.0), Component::point(3.0)],
            MaxStrategy::ByMean,
        );
        assert_eq!(c.evaluate().mean(), 3.0);
    }

    #[test]
    #[should_panic]
    fn empty_sum_panics() {
        Component::Sum(vec![], Dependence::Related).evaluate();
    }
}
