//! Degradation terms: how a fault environment stretches a healthy
//! structural prediction.
//!
//! The Table 2 algebra predicts `ExTime` for a *healthy* run. Production
//! faults (PR 3–4) perturb that three ways, and each maps onto one term
//! here:
//!
//! * **slowdown** — multiplicative stretch of the execution time itself:
//!   load storms on the bottleneck machine, checkpoint write overhead,
//!   and recomputed iterations after a restore all scale the work;
//! * **delay_secs** — additive dead time that shifts completion without
//!   scaling the work: supervisor backoff between retries and blackout
//!   ride-through while monitoring is dark;
//! * **widening** — extra relative spread on the stochastic interval:
//!   degraded sensors (dropouts, spikes, corruption) make the forecast
//!   the model is parameterized with less certain.
//!
//! The terms are computed by `prodpred-core::faultmodel` as pure
//! functions of the fault configuration; this module only defines the
//! algebra of *applying* them, so the structural crate stays free of any
//! fault-model policy. [`DegradationTerms::none`] is a bit-exact
//! identity: applying it returns the input value unchanged (multiplying
//! by 1.0 and adding 0.0 preserves every IEEE-754 bit pattern, including
//! negative zero and infinities), which is what keeps the healthy
//! service path bit-identical with and without the fault layer compiled
//! in.

use prodpred_stochastic::StochasticValue;
use serde::{Deserialize, Serialize};

/// The three degradation terms applied to a healthy prediction. See the
/// module docs for what each models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationTerms {
    /// Multiplicative stretch of the execution time (≥ 1 in practice).
    pub slowdown: f64,
    /// Additive dead time in seconds (backoff, blackout ride-through).
    pub delay_secs: f64,
    /// Extra multiplicative spread on the stochastic half-width (≥ 1).
    pub widening: f64,
}

impl DegradationTerms {
    /// The identity terms: applying them is a bit-exact no-op.
    pub fn none() -> Self {
        Self {
            slowdown: 1.0,
            delay_secs: 0.0,
            widening: 1.0,
        }
    }

    /// Whether these terms are the exact identity.
    pub fn is_none(&self) -> bool {
        *self == Self::none()
    }
}

impl Default for DegradationTerms {
    fn default() -> Self {
        Self::none()
    }
}

/// Applies degradation terms to a healthy stochastic prediction: the
/// mean is stretched by `slowdown` then shifted by `delay_secs`; the
/// half-width is stretched by `slowdown` (spread scales with the work)
/// and additionally by `widening` (sensor uncertainty).
pub fn degrade(healthy: StochasticValue, terms: &DegradationTerms) -> StochasticValue {
    StochasticValue::new(
        healthy.mean() * terms.slowdown + terms.delay_secs,
        healthy.half_width() * terms.slowdown * terms.widening,
    )
}

/// Applies degradation terms to a point prediction (the mean-value
/// model): stretch then shift.
pub fn degrade_point(point: f64, terms: &DegradationTerms) -> f64 {
    point * terms.slowdown + terms.delay_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_a_bit_exact_identity() {
        let terms = DegradationTerms::none();
        assert!(terms.is_none());
        for (mean, hw) in [(0.0, 0.0), (12.5, 0.75), (1e-300, 1e-300), (1e300, 0.0)] {
            let v = StochasticValue::new(mean, hw);
            let d = degrade(v, &terms);
            assert_eq!(d.mean().to_bits(), v.mean().to_bits());
            assert_eq!(d.half_width().to_bits(), v.half_width().to_bits());
            assert_eq!(degrade_point(mean, &terms).to_bits(), mean.to_bits());
        }
    }

    #[test]
    fn terms_apply_in_stretch_then_shift_order() {
        let terms = DegradationTerms {
            slowdown: 1.5,
            delay_secs: 10.0,
            widening: 2.0,
        };
        assert!(!terms.is_none());
        let v = StochasticValue::new(100.0, 4.0);
        let d = degrade(v, &terms);
        assert!((d.mean() - 160.0).abs() < 1e-12);
        assert!((d.half_width() - 12.0).abs() < 1e-12);
        assert!((degrade_point(100.0, &terms) - 160.0).abs() < 1e-12);
        // Delay shifts the whole interval; it never widens it.
        assert!((d.hi() - d.lo() - 2.0 * 12.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_is_deterministic() {
        let terms = DegradationTerms {
            slowdown: 1.037,
            delay_secs: 61.5,
            widening: 1.21,
        };
        let v = StochasticValue::new(33.7, 1.9);
        let a = degrade(v, &terms);
        let b = degrade(v, &terms);
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.half_width().to_bits(), b.half_width().to_bits());
    }
}
