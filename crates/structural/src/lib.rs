//! # prodpred-structural
//!
//! Structural performance models (Schopf '97), extended with stochastic
//! parameters per the paper's Section 2.2: "Structural models are composed
//! of component models and equations representing their interactions.
//! ... By parameterizing such models with stochastic values, we can
//! calculate performance predictions which are also stochastic values."
//!
//! * [`param`] — point/stochastic model parameters with their sources,
//! * [`component`] — the recursive component-model expression algebra,
//! * [`comm`] — the `PtToPt` / `SendLR` / `ReceLR` communication models,
//! * [`comp`] — operation-count and benchmark computation models, with the
//!   production `Comp / load` form,
//! * [`sor_model`] — the full Red-Black SOR `ExTime` model and the
//!   Figure-7 skew bound,
//! * [`degrade`] — the fault-degradation terms applied on top of a
//!   healthy prediction (slowdown, delay, spread widening).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod comm;
pub mod comp;
pub mod component;
pub mod degrade;
pub mod param;
pub mod sor_model;
pub mod validate;

pub use comm::{phase_comm, phase_comm_messages, Neighbours, PtToPtModel};
pub use comp::{phase_comp, BenchmarkModel, OpCountModel};
pub use component::Component;
pub use degrade::{degrade, degrade_point, DegradationTerms};
pub use param::{Param, ParamSource};
pub use sor_model::{
    skew_bound, PhaseBreakdown, ProcessorInputs, SorModelInputs, SorStructuralModel,
};
pub use validate::{monte_carlo, monte_carlo_par, monte_carlo_par_reference, McResult, MC_CHUNK};
