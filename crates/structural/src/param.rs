//! Model parameters: point values or stochastic values.
//!
//! "Model parameters may be point values, such as NumElt and Size(Elt), or
//! stochastic values, such as BW(x, y). ... the parameter values can be
//! computed either at compile-time or run-time" (paper Section 2.2.1).

use prodpred_stochastic::StochasticValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// When a parameter's value is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamSource {
    /// Known statically (compile time): element sizes, operation counts,
    /// dedicated bandwidth.
    Static,
    /// Measured at run time: CPU availability, available bandwidth.
    Runtime,
}

/// A model parameter: a point value or a stochastic value, tagged with its
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Param {
    value: StochasticValue,
    source: ParamSource,
}

impl Param {
    /// A static point parameter.
    pub fn point(v: f64) -> Self {
        Self {
            value: StochasticValue::point(v),
            source: ParamSource::Static,
        }
    }

    /// A runtime stochastic parameter.
    pub fn stochastic(v: StochasticValue) -> Self {
        Self {
            value: v,
            source: ParamSource::Runtime,
        }
    }

    /// A parameter with an explicit source.
    pub fn with_source(v: StochasticValue, source: ParamSource) -> Self {
        Self { value: v, source }
    }

    /// The underlying stochastic value (a point value is "a stochastic
    /// value in which the probability of X is 1" — footnote 1).
    pub fn value(&self) -> StochasticValue {
        self.value
    }

    /// Where the value comes from.
    pub fn source(&self) -> ParamSource {
        self.source
    }

    /// Whether this is a point value.
    pub fn is_point(&self) -> bool {
        self.value.is_point()
    }

    /// Collapses the parameter to its mean — what a conventional
    /// point-valued model would use.
    pub fn to_point(&self) -> Param {
        Self {
            value: StochasticValue::point(self.value.mean()),
            source: self.source,
        }
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::point(v)
    }
}

impl From<StochasticValue> for Param {
    fn from(v: StochasticValue) -> Self {
        Param::stochastic(v)
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_param() {
        let p = Param::point(8.0);
        assert!(p.is_point());
        assert_eq!(p.value().mean(), 8.0);
        assert_eq!(p.source(), ParamSource::Static);
    }

    #[test]
    fn stochastic_param() {
        let p = Param::stochastic(StochasticValue::new(0.48, 0.05));
        assert!(!p.is_point());
        assert_eq!(p.source(), ParamSource::Runtime);
    }

    #[test]
    fn to_point_collapses_width() {
        let p = Param::stochastic(StochasticValue::new(5.0, 2.0));
        let q = p.to_point();
        assert!(q.is_point());
        assert_eq!(q.value().mean(), 5.0);
        assert_eq!(q.source(), ParamSource::Runtime);
    }

    #[test]
    fn conversions() {
        let a: Param = 3.0.into();
        assert!(a.is_point());
        let b: Param = StochasticValue::new(1.0, 0.5).into();
        assert!(!b.is_point());
    }
}
