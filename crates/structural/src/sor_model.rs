//! The full structural model for distributed Red-Black SOR
//! (paper Section 2.2.1):
//!
//! ```text
//! ExTime = sum_{i=1}^{NumIts} [ Max_p{RedComp_p} + Max_p{RedComm_p}
//!                             + Max_p{BlackComp_p} + Max_p{BlackComm_p} ]
//! ```
//!
//! Each per-processor component is built from the models in [`crate::comm`]
//! and [`crate::comp`]; the `Max` over processors uses a configurable
//! strategy (Section 2.3.3), and parameters may be point or stochastic
//! values — producing point or stochastic predictions respectively.

use crate::comm::{phase_comm, Neighbours, PtToPtModel};
use crate::comp::{phase_comp, BenchmarkModel};
use crate::param::Param;
use prodpred_stochastic::{max_of, Dependence, MaxStrategy, StochasticValue};
use serde::{Deserialize, Serialize};

/// Per-processor inputs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProcessorInputs {
    /// `NumElt_p`: total grid elements owned by the processor.
    pub elements: f64,
    /// `BM(Elt_p)`: benchmarked seconds per element (dedicated).
    pub bm_secs_per_elt: Param,
    /// CPU availability (1.0 for dedicated; stochastic from the NWS in
    /// production).
    pub load: Param,
}

impl ProcessorInputs {
    /// Builds processor inputs from the operation-counting computation
    /// model instead of a benchmark — "We could have used an operation
    /// count model just as easily" (paper §2.2.1). The per-element time is
    /// `Op(p, Elt) * CPU_p`; stochastic operation counts or op times
    /// (e.g. benchmarked with jitter) propagate into the prediction.
    pub fn from_op_count(
        elements: f64,
        ops_per_elt: Param,
        secs_per_op: Param,
        load: Param,
        dep: Dependence,
    ) -> Self {
        let bm = ops_per_elt.value().mul(&secs_per_op.value(), dep);
        Self {
            elements,
            bm_secs_per_elt: Param::with_source(bm, crate::param::ParamSource::Static),
            load,
        }
    }
}

/// The SOR structural model's inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SorModelInputs {
    /// Grid dimension `N`.
    pub n: usize,
    /// `NumIts`: red+black iterations.
    pub iterations: usize,
    /// Per-processor characteristics, in strip order.
    pub procs: Vec<ProcessorInputs>,
    /// The shared-segment transfer model.
    pub network: PtToPtModel,
    /// Strategy for the `Max` over processors.
    pub max_strategy: MaxStrategy,
    /// Dependence when summing the four phase terms. Phases share the
    /// machines and the segment, so `Related` is the faithful default.
    pub phase_dependence: Dependence,
}

/// The four per-iteration phase maxima, useful for diagnosis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// `Max_p RedComp_p`.
    pub red_comp: StochasticValue,
    /// `Max_p RedComm_p`.
    pub red_comm: StochasticValue,
    /// `Max_p BlackComp_p`.
    pub black_comp: StochasticValue,
    /// `Max_p BlackComm_p`.
    pub black_comm: StochasticValue,
}

impl PhaseBreakdown {
    /// One iteration's time: the sum of the four phase maxima.
    pub fn iteration_time(&self, dep: Dependence) -> StochasticValue {
        self.red_comp
            .add(&self.red_comm, dep)
            .add(&self.black_comp, dep)
            .add(&self.black_comm, dep)
    }
}

/// The SOR structural model.
///
/// ```
/// use prodpred_stochastic::{Dependence, MaxStrategy, StochasticValue};
/// use prodpred_structural::{
///     Param, ProcessorInputs, PtToPtModel, SorModelInputs, SorStructuralModel,
/// };
///
/// // Two processors, one in the paper's 0.48 ± 0.05 load mode.
/// let inputs = SorModelInputs {
///     n: 1000,
///     iterations: 50,
///     procs: vec![
///         ProcessorInputs {
///             elements: 499_000.0,
///             bm_secs_per_elt: Param::point(2.0e-6),
///             load: Param::stochastic(StochasticValue::new(0.48, 0.05)),
///         },
///         ProcessorInputs {
///             elements: 499_000.0,
///             bm_secs_per_elt: Param::point(0.9e-6),
///             load: Param::point(0.94),
///         },
///     ],
///     network: PtToPtModel {
///         size_elt: 8.0,
///         ded_bw: Param::point(1.25e6),
///         bw_avail: Param::stochastic(StochasticValue::new(0.5, 0.08)),
///         latency: 1.0e-3,
///         dependence: Dependence::Related,
///     },
///     max_strategy: MaxStrategy::ByMean,
///     phase_dependence: Dependence::Related,
/// };
/// let model = SorStructuralModel::new(inputs);
/// let prediction = model.predict();
/// // The loaded Sparc-2 dominates: ~104 s of compute plus comm.
/// assert!(prediction.mean() > 100.0 && prediction.mean() < 125.0);
/// assert!(!prediction.is_point()); // stochastic in, stochastic out
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SorStructuralModel {
    inputs: SorModelInputs,
}

impl SorStructuralModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors or no iterations.
    pub fn new(inputs: SorModelInputs) -> Self {
        assert!(!inputs.procs.is_empty(), "model needs processors");
        assert!(inputs.iterations > 0, "model needs iterations");
        Self { inputs }
    }

    /// The inputs.
    pub fn inputs(&self) -> &SorModelInputs {
        &self.inputs
    }

    /// Evaluates the four per-iteration phase maxima.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let inp = &self.inputs;
        let p = inp.procs.len();
        let ghost = Param::point(inp.n as f64);
        let dep = inp.network.dependence;

        let mut comps = Vec::with_capacity(p);
        let mut comms = Vec::with_capacity(p);
        for (i, proc) in inp.procs.iter().enumerate() {
            let bm = BenchmarkModel {
                bm_secs_per_elt: proc.bm_secs_per_elt,
            };
            comps.push(phase_comp(&bm, proc.elements, proc.load, dep));
            comms.push(phase_comm(&inp.network, Neighbours::of(i, p), ghost));
        }
        let comp_max = max_of(&comps, inp.max_strategy);
        let comm_max = max_of(&comms, inp.max_strategy);
        // Red and black phases are structurally identical under constant
        // parameters; the model keeps the four-term form of the paper.
        PhaseBreakdown {
            red_comp: comp_max,
            red_comm: comm_max,
            black_comp: comp_max,
            black_comm: comm_max,
        }
    }

    /// The stochastic execution-time prediction: the `NumIts`-fold sum of
    /// the per-iteration time.
    pub fn predict(&self) -> StochasticValue {
        let per_iter = self
            .phase_breakdown()
            .iteration_time(self.inputs.phase_dependence);
        // Sum of NumIts identical related terms: scale by the count.
        // (Under the related rule, sum_{i=1..k} (X ± a) = kX ± ka.)
        match self.inputs.phase_dependence {
            Dependence::Related => per_iter.scale(self.inputs.iterations as f64),
            Dependence::Unrelated => {
                // Means add linearly, widths in quadrature: k X ± sqrt(k) a.
                let k = self.inputs.iterations as f64;
                StochasticValue::new(per_iter.mean() * k, per_iter.half_width() * k.sqrt())
            }
        }
    }

    /// The model as an explicit [`Component`](crate::component::Component)
    /// expression tree — the paper's "structural models are composed of
    /// component models" form, useful for inspection and for Monte-Carlo
    /// validation via [`crate::validate::monte_carlo`].
    ///
    /// Evaluating the tree reproduces [`predict`](Self::predict) exactly:
    /// under the related rule the `NumIts`-fold sum is a `Scale` node;
    /// under the unrelated rule it is a literal sum of `NumIts` copies
    /// (whose widths combine in quadrature).
    pub fn to_component(&self) -> crate::component::Component {
        use crate::component::Component;
        let inp = &self.inputs;
        let p = inp.procs.len();
        let dep = inp.network.dependence;
        let ghost = Param::point(inp.n as f64);

        let comp_terms: Vec<Component> = inp
            .procs
            .iter()
            .map(|proc| {
                Component::Quotient(
                    Box::new(Component::Product(
                        vec![
                            Component::point(proc.elements / 2.0),
                            Component::Param(proc.bm_secs_per_elt),
                        ],
                        dep,
                    )),
                    Box::new(Component::Param(proc.load)),
                    dep,
                )
            })
            .collect();
        let comm_terms: Vec<Component> = (0..p)
            .map(|i| {
                Component::Param(Param::stochastic(phase_comm(
                    &inp.network,
                    Neighbours::of(i, p),
                    ghost,
                )))
            })
            .collect();

        let iteration = Component::Sum(
            vec![
                Component::Max(comp_terms.clone(), inp.max_strategy),
                Component::Max(comm_terms.clone(), inp.max_strategy),
                Component::Max(comp_terms, inp.max_strategy),
                Component::Max(comm_terms, inp.max_strategy),
            ],
            inp.phase_dependence,
        );
        match inp.phase_dependence {
            Dependence::Related => Component::Scale(inp.iterations as f64, Box::new(iteration)),
            Dependence::Unrelated => {
                Component::Sum(vec![iteration; inp.iterations], Dependence::Unrelated)
            }
        }
    }

    /// The conventional point prediction: every parameter collapsed to its
    /// mean.
    pub fn predict_point(&self) -> f64 {
        let mut collapsed = self.inputs.clone();
        for p in &mut collapsed.procs {
            p.bm_secs_per_elt = p.bm_secs_per_elt.to_point();
            p.load = p.load.to_point();
        }
        collapsed.network.bw_avail = collapsed.network.bw_avail.to_point();
        collapsed.network.ded_bw = collapsed.network.ded_bw.to_point();
        SorStructuralModel::new(collapsed).predict().mean()
    }
}

/// Skew bound (paper Figure 7): "accumulating communication delays can
/// create a kind of 'skew' which can delay execution of each iteration by
/// the amount of at most P iterations". The worst-case extra delay is the
/// per-iteration time times the processor count.
pub fn skew_bound(per_iteration: StochasticValue, processors: usize) -> StochasticValue {
    assert!(processors > 0);
    per_iteration.scale(processors as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dedicated_inputs(n: usize, iterations: usize, p: usize) -> SorModelInputs {
        let elements = ((n - 2) * (n - 2)) as f64 / p as f64;
        SorModelInputs {
            n,
            iterations,
            procs: (0..p)
                .map(|_| ProcessorInputs {
                    elements,
                    bm_secs_per_elt: Param::point(0.9e-6),
                    load: Param::point(1.0),
                })
                .collect(),
            network: PtToPtModel {
                size_elt: 8.0,
                ded_bw: Param::point(1.25e6),
                bw_avail: Param::point(0.58),
                latency: 1.0e-3,
                dependence: Dependence::Related,
            },
            max_strategy: MaxStrategy::ByMean,
            phase_dependence: Dependence::Related,
        }
    }

    #[test]
    fn dedicated_prediction_is_point() {
        let m = SorStructuralModel::new(dedicated_inputs(1000, 10, 4));
        let v = m.predict();
        assert!(v.is_point(), "all-point inputs must give a point output");
        // Compute per phase for the max strip: 998*998/4/2 elements * 0.9us
        // = 0.1121 s; comm per phase for interior: 4 transfers of
        // (1000*8)/(0.58*1.25e6)+1ms = 12.03 ms -> 48.1 ms.
        // Iteration = 2*(0.1121 + 0.0481) = 0.3204; 10 iters ~ 3.2 s.
        assert!(v.mean() > 2.5 && v.mean() < 4.0, "mean {}", v.mean());
    }

    #[test]
    fn stochastic_load_produces_stochastic_prediction() {
        let mut inp = dedicated_inputs(1600, 50, 4);
        for p in &mut inp.procs {
            p.load = Param::stochastic(StochasticValue::new(0.48, 0.05));
        }
        let m = SorStructuralModel::new(inp);
        let v = m.predict();
        assert!(!v.is_point());
        // Relative width of the compute term survives into the total.
        assert!(v.percent().unwrap() > 3.0, "{v}");
        // The point prediction equals the stochastic mean here (collapse
        // of a reciprocal is mean-preserving in this first-order algebra).
        let pt = m.predict_point();
        assert!((pt - v.mean()).abs() / v.mean() < 1e-9);
    }

    #[test]
    fn production_slower_than_dedicated() {
        let ded = SorStructuralModel::new(dedicated_inputs(1000, 10, 4));
        let mut prod_inputs = dedicated_inputs(1000, 10, 4);
        for p in &mut prod_inputs.procs {
            p.load = Param::stochastic(StochasticValue::new(0.48, 0.05));
        }
        let prod = SorStructuralModel::new(prod_inputs);
        assert!(prod.predict().mean() > ded.predict().mean() * 1.5);
    }

    #[test]
    fn slowest_processor_dominates_max() {
        let mut inp = dedicated_inputs(1000, 10, 4);
        inp.procs[2].load = Param::stochastic(StochasticValue::new(0.25, 0.02));
        let m = SorStructuralModel::new(inp);
        let bd = m.phase_breakdown();
        // Max comp should reflect the slow processor: elements/2 * bm / 0.25.
        let expect = (998.0 * 998.0 / 4.0 / 2.0) * 0.9e-6 / 0.25;
        assert!((bd.red_comp.mean() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn more_iterations_scale_linearly_related() {
        let a = SorStructuralModel::new(dedicated_inputs(800, 10, 4));
        let b = SorStructuralModel::new(dedicated_inputs(800, 20, 4));
        assert!((b.predict().mean() / a.predict().mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_iterations_grow_width_as_sqrt() {
        let mut inp = dedicated_inputs(800, 16, 4);
        for p in &mut inp.procs {
            p.load = Param::stochastic(StochasticValue::new(0.5, 0.05));
        }
        inp.phase_dependence = Dependence::Unrelated;
        let v16 = SorStructuralModel::new(inp.clone()).predict();
        inp.iterations = 64;
        let v64 = SorStructuralModel::new(inp).predict();
        // 4x iterations -> 4x mean, 2x width.
        assert!((v64.mean() / v16.mean() - 4.0).abs() < 1e-9);
        assert!((v64.half_width() / v16.half_width() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phase_breakdown_sums_to_iteration() {
        let m = SorStructuralModel::new(dedicated_inputs(500, 5, 3));
        let bd = m.phase_breakdown();
        let it = bd.iteration_time(Dependence::Related);
        let total = m.predict();
        assert!((it.mean() * 5.0 - total.mean()).abs() < 1e-9);
    }

    #[test]
    fn op_count_inputs_match_benchmark_inputs_when_consistent() {
        // BM = Op * CPU: the two parameterizations must predict the same.
        let bench = SorStructuralModel::new(dedicated_inputs(800, 10, 4));
        let mut inp = dedicated_inputs(800, 10, 4);
        for p in &mut inp.procs {
            *p = ProcessorInputs::from_op_count(
                p.elements,
                Param::point(10.0),
                Param::point(0.09e-6),
                p.load,
                Dependence::Unrelated,
            );
        }
        let opcount = SorStructuralModel::new(inp);
        assert!(
            (bench.predict().mean() - opcount.predict().mean()).abs()
                < 1e-9 * bench.predict().mean()
        );
    }

    #[test]
    fn stochastic_op_count_widens_prediction() {
        // A ±10% operation count (data-dependent stencils) makes even the
        // dedicated prediction stochastic.
        let mut inp = dedicated_inputs(800, 10, 4);
        for p in &mut inp.procs {
            *p = ProcessorInputs::from_op_count(
                p.elements,
                Param::stochastic(StochasticValue::from_percent(10.0, 10.0)),
                Param::point(0.09e-6),
                Param::point(1.0),
                Dependence::Unrelated,
            );
        }
        let v = SorStructuralModel::new(inp).predict();
        assert!(!v.is_point());
        assert!(v.percent().unwrap() > 5.0, "{v}");
    }

    #[test]
    fn component_tree_reproduces_direct_evaluation() {
        for dep in [Dependence::Related, Dependence::Unrelated] {
            let mut inp = dedicated_inputs(900, 12, 4);
            inp.phase_dependence = dep;
            for p in &mut inp.procs {
                p.load = Param::stochastic(StochasticValue::new(0.48, 0.05));
            }
            inp.network.bw_avail = Param::stochastic(StochasticValue::new(0.5, 0.08));
            let model = SorStructuralModel::new(inp);
            let direct = model.predict();
            let tree = model.to_component().evaluate();
            assert!(
                (direct.mean() - tree.mean()).abs() < 1e-9 * direct.mean(),
                "{dep:?}: mean {} vs {}",
                direct.mean(),
                tree.mean()
            );
            assert!(
                (direct.half_width() - tree.half_width()).abs()
                    < 1e-9 * direct.half_width().max(1.0),
                "{dep:?}: width {} vs {}",
                direct.half_width(),
                tree.half_width()
            );
        }
    }

    #[test]
    fn skew_bound_scales_with_processors() {
        let per_iter = StochasticValue::new(0.3, 0.05);
        let b = skew_bound(per_iter, 4);
        assert!((b.mean() - 1.2).abs() < 1e-12);
        assert!((b.half_width() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_procs() {
        let mut inp = dedicated_inputs(100, 1, 1);
        inp.procs.clear();
        SorStructuralModel::new(inp);
    }
}
