//! Monte-Carlo validation of the closed-form stochastic arithmetic.
//!
//! The Table-2 rules summarize distributions with two numbers; this module
//! evaluates a whole [`Component`] tree by *sampling* — draw every
//! stochastic parameter from its normal, fold the tree numerically,
//! repeat — producing the empirical distribution the closed form
//! approximates. Tests and the ablation harness use it to quantify where
//! the summary rules are exact (linear combinations), first-order
//! (products, quotients), and structurally conservative (related sums).

use crate::component::Component;
use prodpred_stochastic::dist::Distribution;
use prodpred_stochastic::{StochasticValue, Summary};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The empirical result of Monte-Carlo evaluation.
#[derive(Debug, Clone)]
pub struct McResult {
    /// Mean ± 2 sd of the sampled outputs.
    pub summary: StochasticValue,
    /// Sampled output skewness (a normal summary hides it).
    pub skewness: f64,
    /// Fraction of samples inside the closed-form interval.
    pub closed_form_coverage: f64,
}

/// Sample count per Monte-Carlo chunk. Fixed — never derived from the
/// thread count — so the chunk structure, the per-chunk RNG streams, and
/// the floating-point merge order are a function of `n` alone.
pub const MC_CHUNK: usize = 4096;

/// Evaluates `component` by sampling `n` times with the given seed and
/// compares against its closed-form evaluation.
///
/// Group `Max`/`Min` nodes are sampled exactly (the max of the sampled
/// children), so the comparison also scores the Max-strategy choice.
///
/// Fewer than two samples cannot estimate a spread, so `n` saturates to
/// 2 (a sampled standard deviation needs `n - 1 >= 1`); this keeps the
/// library panic-free on degenerate requests.
pub fn monte_carlo(component: &Component, n: usize, seed: u64) -> McResult {
    let n = n.max(2);
    let closed = component.evaluate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Summary::new();
    let mut inside = 0usize;
    for _ in 0..n {
        let x = sample_once(component, &mut rng);
        s.push(x);
        if closed.contains(x) {
            inside += 1;
        }
    }
    McResult {
        summary: StochasticValue::from_mean_sd(s.mean(), s.sd()),
        skewness: s.skewness(),
        closed_form_coverage: inside as f64 / n as f64,
    }
}

/// Parallel Monte-Carlo evaluation: the samples are split into fixed
/// [`MC_CHUNK`]-size chunks, chunk `i` draws from its own RNG stream
/// seeded by `derive_seed(seed, i)`, and the per-chunk moment
/// accumulators are combined **in chunk order** with Chan's parallel
/// mean/variance merge ([`Summary::merge`]).
///
/// Because neither the chunk structure nor the merge order depends on
/// the worker count, the result is bit-identical to
/// [`monte_carlo_par_reference`] at every `threads` value (0 = auto /
/// `PRODPRED_THREADS`). The sample *stream* differs from the
/// single-stream [`monte_carlo`] — same distribution, different draws —
/// which is why the serial chunked reference exists as the oracle.
///
/// `n` saturates to 2, as in [`monte_carlo`].
pub fn monte_carlo_par(component: &Component, n: usize, seed: u64, threads: usize) -> McResult {
    let n = n.max(2);
    let chunks = prodpred_pool::chunk_lengths(n, MC_CHUNK);
    let closed = component.evaluate();
    let partials = prodpred_pool::parallel_map(&chunks, threads, |i, &len| {
        mc_chunk(
            component,
            &closed,
            len,
            prodpred_pool::derive_seed(seed, i as u64),
        )
    });
    merge_mc_partials(&partials, n)
}

/// Serial oracle for [`monte_carlo_par`]: the same chunked seed scheme
/// and ordered Chan merge, executed on the calling thread. Kept (like
/// the `*_reference` trace oracles) so tier-1 tests can assert the
/// parallel path is bit-identical at 1, 2, 4, and 8 threads.
pub fn monte_carlo_par_reference(component: &Component, n: usize, seed: u64) -> McResult {
    let n = n.max(2);
    let closed = component.evaluate();
    let partials: Vec<(Summary, usize)> = prodpred_pool::chunk_lengths(n, MC_CHUNK)
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            mc_chunk(
                component,
                &closed,
                len,
                prodpred_pool::derive_seed(seed, i as u64),
            )
        })
        .collect();
    merge_mc_partials(&partials, n)
}

/// Samples one chunk: `len` draws from a fresh stream, accumulated into
/// a local [`Summary`] plus the closed-form interval hit count.
fn mc_chunk(
    component: &Component,
    closed: &StochasticValue,
    len: usize,
    seed: u64,
) -> (Summary, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Summary::new();
    let mut inside = 0usize;
    for _ in 0..len {
        let x = sample_once(component, &mut rng);
        s.push(x);
        if closed.contains(x) {
            inside += 1;
        }
    }
    (s, inside)
}

/// Ordered reduction of per-chunk partials into one [`McResult`].
fn merge_mc_partials(partials: &[(Summary, usize)], n: usize) -> McResult {
    let mut s = Summary::new();
    let mut inside = 0usize;
    for (part, hits) in partials {
        s.merge(part);
        inside += hits;
    }
    McResult {
        summary: StochasticValue::from_mean_sd(s.mean(), s.sd()),
        skewness: s.skewness(),
        closed_form_coverage: inside as f64 / n as f64,
    }
}

/// One numeric sample of the tree.
fn sample_once(component: &Component, rng: &mut dyn RngCore) -> f64 {
    match component {
        Component::Param(p) => p.value().to_normal().sample(rng),
        Component::Sum(parts, _) => parts.iter().map(|c| sample_once(c, rng)).sum(),
        Component::Product(parts, _) => parts.iter().map(|c| sample_once(c, rng)).product(),
        Component::Quotient(num, den, _) => {
            let d = sample_once(den, rng);
            // Guard against a sampled divisor straddling zero: resample
            // toward the mean's sign (the closed form also requires a
            // nonzero-mean divisor).
            let mean = den.evaluate().mean();
            // tidy:allow(PP004): exact zero guard before dividing by the denominator
            let d = if d == 0.0 || d.signum() != mean.signum() {
                mean
            } else {
                d
            };
            sample_once(num, rng) / d
        }
        Component::Scale(c, inner) => c * sample_once(inner, rng),
        Component::Max(parts, _) => parts
            .iter()
            .map(|c| sample_once(c, rng))
            .fold(f64::NEG_INFINITY, f64::max),
        Component::Min(parts, _) => parts
            .iter()
            .map(|c| sample_once(c, rng))
            .fold(f64::INFINITY, f64::min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodpred_stochastic::{Dependence, MaxStrategy};

    fn sv(m: f64, h: f64) -> Component {
        Component::stochastic(StochasticValue::new(m, h))
    }

    #[test]
    fn unrelated_sum_is_exact() {
        let c = Component::Sum(
            vec![sv(12.0, 0.6), sv(5.0, 1.0), sv(3.0, 0.4)],
            Dependence::Unrelated,
        );
        let mc = monte_carlo(&c, 100_000, 1);
        let closed = c.evaluate();
        assert!((mc.summary.mean() - closed.mean()).abs() < 0.02);
        assert!((mc.summary.half_width() - closed.half_width()).abs() < 0.02);
        // Interval coverage at its nominal ~95.45%.
        assert!((mc.closed_form_coverage - 0.9545).abs() < 0.01);
        assert!(mc.skewness.abs() < 0.05);
    }

    #[test]
    fn related_sum_is_conservative_for_independent_samples() {
        // The related rule widens; sampling independent parts must be
        // over-covered by it.
        let c = Component::Sum(vec![sv(12.0, 0.6), sv(5.0, 1.0)], Dependence::Related);
        let mc = monte_carlo(&c, 50_000, 2);
        assert!(mc.closed_form_coverage > 0.97);
        assert!(mc.summary.half_width() < c.evaluate().half_width());
    }

    #[test]
    fn product_first_order_accuracy_and_skew() {
        let c = Component::Product(vec![sv(12.0, 0.6), sv(5.0, 1.0)], Dependence::Unrelated);
        let mc = monte_carlo(&c, 200_000, 3);
        let closed = c.evaluate();
        assert!((mc.summary.mean() - closed.mean()).abs() / closed.mean() < 0.005);
        assert!((mc.summary.half_width() - closed.half_width()).abs() / closed.half_width() < 0.02);
        // §2.3.2: the product of normals is long-tailed (mild at these
        // low relative widths, pronounced for wider factors).
        assert!(mc.skewness > 0.01, "skew {}", mc.skewness);
        let wide = Component::Product(vec![sv(10.0, 5.0), sv(10.0, 5.0)], Dependence::Unrelated);
        let mc_wide = monte_carlo(&wide, 200_000, 31);
        assert!(mc_wide.skewness > 0.3, "wide skew {}", mc_wide.skewness);
    }

    #[test]
    fn quotient_first_order_accuracy() {
        let c = Component::Quotient(
            Box::new(Component::point(1.0)),
            Box::new(sv(0.48, 0.05)),
            Dependence::Unrelated,
        );
        let mc = monte_carlo(&c, 200_000, 4);
        let closed = c.evaluate();
        assert!((mc.summary.mean() - closed.mean()).abs() / closed.mean() < 0.01);
        assert!((mc.summary.half_width() - closed.half_width()).abs() / closed.half_width() < 0.05);
        // 1/load is right-skewed.
        assert!(mc.skewness > 0.05);
    }

    #[test]
    fn max_by_mean_undercovers_when_inputs_overlap() {
        // Selecting one input's interval misses the upward shift of the
        // true max distribution; Clark captures it.
        let parts = vec![sv(10.0, 2.0), sv(10.0, 2.0), sv(10.0, 2.0)];
        let by_mean = Component::Max(parts.clone(), MaxStrategy::ByMean);
        let clark = Component::Max(parts, MaxStrategy::Clark);
        let mc_by_mean = monte_carlo(&by_mean, 100_000, 5);
        let mc_clark = monte_carlo(&clark, 100_000, 5);
        // Same sampled distribution, different closed forms.
        assert!(mc_clark.closed_form_coverage > mc_by_mean.closed_form_coverage);
        assert!(
            (mc_clark.summary.mean() - clark.evaluate().mean()).abs() < 0.05,
            "clark mean {} vs sampled {}",
            clark.evaluate().mean(),
            mc_clark.summary.mean()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = sv(3.0, 1.0);
        let a = monte_carlo(&c, 1000, 7);
        let b = monte_carlo(&c, 1000, 7);
        assert_eq!(a.summary.mean(), b.summary.mean());
    }

    #[test]
    fn small_n_saturates_instead_of_panicking() {
        let c = sv(3.0, 1.0);
        for n in [0usize, 1, 2] {
            let r = monte_carlo(&c, n, 7);
            assert!(r.summary.mean().is_finite(), "n={n}");
            assert!(r.closed_form_coverage.is_finite());
            let p = monte_carlo_par(&c, n, 7, 2);
            assert!(p.summary.mean().is_finite(), "par n={n}");
        }
        // n=0 and n=1 both clamp to the two-sample result.
        let r0 = monte_carlo(&c, 0, 7);
        let r2 = monte_carlo(&c, 2, 7);
        assert_eq!(r0.summary.mean().to_bits(), r2.summary.mean().to_bits());
    }

    #[test]
    fn parallel_bitwise_matches_reference_across_thread_counts() {
        // A tree with every node kind, spanning several chunks.
        let c = Component::Sum(
            vec![
                Component::Product(vec![sv(12.0, 0.6), sv(5.0, 1.0)], Dependence::Unrelated),
                Component::Max(vec![sv(10.0, 2.0), sv(10.0, 2.0)], MaxStrategy::Clark),
                Component::Scale(2.0, Box::new(sv(3.0, 0.4))),
            ],
            Dependence::Unrelated,
        );
        let n = 3 * MC_CHUNK + 101;
        let reference = monte_carlo_par_reference(&c, n, 11);
        for threads in [1usize, 2, 4, 8] {
            let par = monte_carlo_par(&c, n, 11, threads);
            assert_eq!(
                par.summary.mean().to_bits(),
                reference.summary.mean().to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                par.summary.half_width().to_bits(),
                reference.summary.half_width().to_bits()
            );
            assert_eq!(par.skewness.to_bits(), reference.skewness.to_bits());
            assert_eq!(
                par.closed_form_coverage.to_bits(),
                reference.closed_form_coverage.to_bits()
            );
        }
    }

    #[test]
    fn parallel_estimates_the_same_distribution_as_single_stream() {
        // Different streams, same law: the chunked estimator must agree
        // with the single-stream path to Monte-Carlo accuracy.
        let c = Component::Sum(
            vec![sv(12.0, 0.6), sv(5.0, 1.0), sv(3.0, 0.4)],
            Dependence::Unrelated,
        );
        let serial = monte_carlo(&c, 100_000, 1);
        let par = monte_carlo_par(&c, 100_000, 1, 0);
        assert!((serial.summary.mean() - par.summary.mean()).abs() < 0.02);
        assert!((serial.summary.half_width() - par.summary.half_width()).abs() < 0.02);
        assert!((serial.closed_form_coverage - par.closed_form_coverage).abs() < 0.01);
    }
}
