//! Platform 2 in miniature: repeated SOR runs under bursty 4-modal load,
//! comparing the stochastic predictions against both the actual times and
//! the conventional point prediction — the paper's Section 3.2 study.
//!
//! Run with: `cargo run -p prodpred-examples --bin bursty_platform`

use prodpred_core::platform2_experiment;
use prodpred_core::report::render_table;

fn main() {
    let series = platform2_experiment(99, 1600, 8);
    let rows: Vec<Vec<String>> = series
        .records
        .iter()
        .map(|r| {
            let sv = r.prediction.stochastic;
            vec![
                format!("t={:.0}", r.start),
                format!("{sv}"),
                format!("{:.1}", r.prediction.point),
                format!("{:.1}", r.actual_secs),
                if sv.contains(r.actual_secs) {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "run",
                "stochastic prediction (s)",
                "point (s)",
                "actual (s)",
                "covered"
            ],
            &rows
        )
    );
    let acc = series.accuracy().unwrap();
    println!(
        "\ncoverage {:.0}%   stochastic max error {:.1}%   point max error {:.1}%",
        acc.coverage * 100.0,
        acc.max_range_error * 100.0,
        acc.max_mean_error * 100.0
    );
    println!(
        "\nUnder bursty load a point prediction is often badly wrong; the\n\
         stochastic interval brackets most runs and is only slightly off\n\
         for the rest (the paper's Figures 12-17)."
    );
}
