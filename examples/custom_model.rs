//! Building a custom structural model with the component algebra — for an
//! application the library has never seen.
//!
//! The model: a master/worker image-processing job. Each worker fetches a
//! tile over the shared network, processes it, and sends results back;
//! the job ends when the slowest worker finishes.
//!
//! ```text
//! Worker_w = Fetch + Compute/load_w + Return
//! JobTime  = Max_w Worker_w
//! ```
//!
//! Run with: `cargo run -p prodpred-examples --bin custom_model`

use prodpred_stochastic::{Dependence, MaxStrategy, StochasticValue};
use prodpred_structural::{monte_carlo, Component, Param};

fn main() {
    // Parameters, stochastic where a production system makes them so.
    let tile_bytes = 4.0e6; // known exactly
    let bandwidth = StochasticValue::new(0.9e6, 0.3e6); // B/s, shared segment
    let compute_secs = StochasticValue::new(20.0, 1.0); // dedicated, benchmarked
    let loads = [
        StochasticValue::new(0.92, 0.03),
        StochasticValue::new(0.48, 0.05),
        StochasticValue::new(0.65, 0.20), // volatile machine
    ];

    let transfer = |dep| {
        Component::Quotient(
            Box::new(Component::point(tile_bytes)),
            Box::new(Component::stochastic(bandwidth)),
            dep,
        )
    };

    let workers: Vec<Component> = loads
        .iter()
        .map(|&load| {
            Component::Sum(
                vec![
                    transfer(Dependence::Related), // fetch
                    Component::Quotient(
                        Box::new(Component::stochastic(compute_secs)),
                        Box::new(Component::Param(Param::stochastic(load))),
                        Dependence::Unrelated,
                    ),
                    transfer(Dependence::Related), // return
                ],
                Dependence::Related, // same machine, same segment
            )
        })
        .collect();

    println!("per-worker stochastic times:");
    for (i, w) in workers.iter().enumerate() {
        println!("  worker {i}: {} s", w.evaluate());
    }

    for strategy in [
        MaxStrategy::ByMean,
        MaxStrategy::ByUpperBound,
        MaxStrategy::Clark,
    ] {
        let job = Component::Max(workers.clone(), strategy);
        let v = job.evaluate();
        println!(
            "\njob time under {strategy:?}: {v} s  (range {:.1}..{:.1})",
            v.lo(),
            v.hi()
        );
        // Score the closed form against sampling.
        let mc = monte_carlo(&job, 50_000, 7);
        println!(
            "  Monte-Carlo truth: {}  | closed-form interval covers {:.1}% of samples",
            mc.summary,
            mc.closed_form_coverage * 100.0
        );
    }

    println!(
        "\nThe volatile worker dominates the job's uncertainty even though\n\
         the loaded Sparc is slower on average — information a point model\n\
         cannot express. Clark's strategy prices the max's upward shift;\n\
         the selection strategies bracket it from below and above."
    );
}
