//! From prediction to decision: grade a stochastic prediction's quality,
//! price a deadline, and print the service range — the paper's closing
//! argument that the *quality* of information is itself information.
//!
//! Run with: `cargo run -p prodpred-examples --bin deadline_advisor`

use prodpred_core::advisor::{deadline_report, service_range, PredictionQuality};
use prodpred_core::{decompose, DecompositionPolicy, PredictorConfig, SorPredictor};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::Platform;
use prodpred_sor::{simulate, DistSorConfig};

fn main() {
    for (name, platform) in [
        ("Platform 1 (single-mode)", Platform::platform1(5, 20_000.0)),
        ("Platform 2 (bursty)", Platform::platform2(5, 20_000.0)),
    ] {
        println!("=== {name} ===\n");
        let nws = NwsService::attach(&platform, NwsConfig::default());
        nws.advance_to(&platform, 600.0);
        let n = 1600;
        let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
        let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());
        let prediction = predictor.predict(n, &strips).expect("warmed up");
        let sv = prediction.stochastic;

        println!(
            "prediction: {sv} s  -> quality {:?}",
            PredictionQuality::of(sv)
        );
        println!("\nservice range (completion time at confidence):");
        for (c, t) in service_range(sv) {
            println!("  {:>4.0}%  <= {t:7.1} s", c * 100.0);
        }

        // Price two candidate deadlines.
        for slack in [1.05, 1.5] {
            let deadline = sv.mean() * slack;
            let rep = deadline_report(sv, deadline, 0.95);
            println!(
                "\ndeadline {:.1} s ({}% over the point estimate): P(meet) = {:.0}%",
                deadline,
                ((slack - 1.0) * 100.0).round(),
                rep.p_meet * 100.0
            );
        }

        // And the ground truth.
        let run = simulate(
            &platform,
            &strips,
            DistSorConfig::new(n, predictor.config().iterations, 600.0),
        );
        println!(
            "\nactual run: {:.1} s ({}within the predicted range)\n",
            run.total_secs,
            if sv.contains(run.total_secs) {
                ""
            } else {
                "NOT "
            }
        );
    }
    println!(
        "A point prediction can only say \"about X seconds\". The stochastic\n\
         prediction prices deadlines: on the quiet platform a 5% slack\n\
         deadline is already near-certain, while under bursty load the same\n\
         slack is a coin flip — knowledge a scheduler can act on."
    );
}
