//! A tour of the Network Weather Service forecaster ensemble: which
//! strategy wins on which kind of resource signal, and what the adaptive
//! selection buys.
//!
//! Run with: `cargo run -p prodpred-examples --bin forecaster_tour`

use prodpred_nws::forecast::{
    postcast_mse, AdaptiveForecaster, AdaptiveWindowMean, ExpSmoothing, Forecaster, LastValue,
    RunningMean, SlidingMean, SlidingMedian, TrimmedMean,
};
use prodpred_nws::TimeSeries;
use prodpred_simgrid::load::{LoadGenerator, MarkovModal, SingleModeAr1};

fn series_from(values: &[f64]) -> TimeSeries {
    let mut s = TimeSeries::new(values.len());
    for (i, &v) in values.iter().enumerate() {
        s.push(i as f64 * 5.0, v);
    }
    s
}

fn main() {
    let signals: Vec<(&str, Vec<f64>)> = vec![
        (
            "single-mode AR(1) load (Platform 1)",
            SingleModeAr1::platform1_center()
                .generate(1, 0.0, 5.0, 400)
                .values()
                .to_vec(),
        ),
        (
            "bursty 4-modal load (Platform 2)",
            MarkovModal::platform2(25.0)
                .generate(2, 0.0, 5.0, 400)
                .values()
                .to_vec(),
        ),
        (
            "slow drift",
            (0..400)
                .map(|i| 0.5 + 0.3 * (i as f64 / 60.0).sin())
                .collect(),
        ),
    ];

    let strategies: Vec<Box<dyn Forecaster + Send + Sync>> = vec![
        Box::new(LastValue),
        Box::new(RunningMean),
        Box::new(SlidingMean { window: 6 }),
        Box::new(SlidingMedian { window: 6 }),
        Box::new(TrimmedMean {
            window: 12,
            trim: 2,
        }),
        Box::new(ExpSmoothing { alpha: 0.3 }),
        Box::new(AdaptiveWindowMean::default()),
    ];

    for (name, values) in &signals {
        println!("--- {name} ---");
        for s in &strategies {
            let mse = postcast_mse(s.as_ref(), values).unwrap();
            println!("  {:16} rmse {:.4}", s.name(), mse.sqrt());
        }
        let ens = AdaptiveForecaster::standard();
        let ts = series_from(values);
        let fc = ens.forecast(&ts).unwrap();
        println!(
            "  adaptive pick: {} (forecast {:.3} ± rmse {:.3})\n",
            ens.names()[fc.winner],
            fc.value,
            fc.rmse
        );
    }
    println!(
        "No single strategy wins everywhere — which is exactly why the NWS\n\
         (and this clone) re-selects the lowest-error strategy per forecast."
    );
}
