//! Shared helpers for the runnable examples.

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}
