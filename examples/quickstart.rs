//! Quickstart: the full prediction pipeline in one sitting.
//!
//! 1. Build a production platform (Platform 1 from the paper),
//! 2. attach the Network Weather Service,
//! 3. decompose the SOR grid across the machines,
//! 4. issue a stochastic execution-time prediction,
//! 5. run the application and compare.
//!
//! Run with: `cargo run -p prodpred-examples --bin quickstart`

use prodpred_core::{decompose, DecompositionPolicy, PredictorConfig, SorPredictor};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::Platform;
use prodpred_sor::{simulate, DistSorConfig};

fn main() {
    // A production network of shared Sparc workstations on 10 Mbit
    // ethernet, with the slow machines sitting in the 0.48 ± 0.05 load
    // mode of the paper's Section 3.1.
    let platform = Platform::platform1(42, 20_000.0);
    println!("platform: {:?}", platform.names());

    // The NWS monitors CPU availability and bandwidth at 5 s intervals.
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 300.0); // five minutes of history

    for (i, _) in platform.machines.iter().enumerate() {
        println!(
            "  cpu[{i}] = {}  (stochastic availability)",
            nws.cpu_stochastic(i).unwrap()
        );
    }
    println!(
        "  bandwidth = {} (fraction of 10 Mbit)\n",
        nws.bandwidth_fraction_stochastic().unwrap()
    );

    // Decompose a 1600x1600 grid proportionally to dedicated speed.
    let n = 1600;
    let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
    for s in &strips {
        println!(
            "  strip[{}]: rows {:?} ({} elements)",
            s.proc,
            s.rows,
            s.elements(n)
        );
    }

    // Predict, then run.
    let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());
    let prediction = predictor.predict(n, &strips).expect("NWS warmed up");
    println!("\nstochastic prediction : {} s", prediction.stochastic);
    println!("point prediction      : {:.2} s", prediction.point);
    println!(
        "interval              : [{:.2}, {:.2}] s",
        prediction.stochastic.lo(),
        prediction.stochastic.hi()
    );

    let run = simulate(
        &platform,
        &strips,
        DistSorConfig {
            paging: None,
            n,
            iterations: predictor.config().iterations,
            start_time: 300.0,
        },
    );
    println!("actual execution time : {:.2} s", run.total_secs);
    println!(
        "inside the stochastic range: {}",
        prediction.stochastic.contains(run.total_secs)
    );
    println!(
        "skew across processors: {:.3} s over {} iterations",
        run.skew_secs,
        run.iteration_secs.len()
    );
}
