//! Prediction-as-a-service in five minutes — entirely in-process.
//!
//! Builds the service core the `serviced` daemon wraps, drives its HTTP
//! surface through the socket-free [`prodpred_service::handle`] layer,
//! and shows the two mechanics that make the query path fast and sound:
//!
//! 1. identical queries hit the **prediction cache** and return the
//!    bit-identical answer without re-running the model;
//! 2. an **ingest tick** publishes a fresh forecast snapshot under a new
//!    epoch and drops every cached prediction wholesale — stale
//!    forecasts are never served.
//!
//! Run with: `cargo run --bin service_quickstart`
//!
//! To see the same surface over real sockets, boot the daemon instead:
//! `cargo run -p prodpred-service --bin serviced` and
//! `curl 'http://127.0.0.1:8017/predict?platform=2&n=1600&procs=4'`.

use prodpred_service::{handle, PredictRequest, ServiceConfig, ServiceCore};

fn main() {
    // The daemon's core: two simulated testbeds, sensors warmed up to
    // t = 600 s, snapshot epoch 1 published for both. Everything below
    // is a deterministic function of this configuration.
    let core = ServiceCore::new(ServiceConfig {
        seed: 42,
        ..ServiceConfig::default()
    });

    println!("== the HTTP surface, without a socket ==");
    for target in [
        "/health",
        "/predict?platform=2&n=1600&procs=4",
        "/predict?platform=2&n=1600&procs=4", // identical: served by the cache
        "/predict?platform=1&n=600&procs=2&source=modal&iters=40",
        "/predict?platform=2&n=1600&procs=4&fault_intensity=0.5", // what-if degraded
        "/predict?platform=1&n=600&procs=0",                      // rejected before the model runs
    ] {
        let response = handle(&core, target);
        println!("GET {target}\n  -> {} {}", response.status, response.body);
    }

    println!("\n== cache mechanics ==");
    let req = PredictRequest {
        platform: 2,
        n: 1000,
        procs: 4,
        config: Default::default(),
        fault_intensity: None,
    };
    let miss = core.query(&req).expect("fresh query");
    let hit = core.query(&req).expect("cached query");
    println!(
        "epoch {}: miss {:.2}s [{:.2}, {:.2}] (cache_hit={}), then hit (cache_hit={})",
        miss.epoch, miss.mean, miss.lo, miss.hi, miss.cache_hit, hit.cache_hit
    );
    assert_eq!(miss.mean.to_bits(), hit.mean.to_bits());

    // One ingest tick: sensors advance 5 simulated seconds, a new
    // immutable snapshot is published via the epoch swap (readers never
    // block), and the whole cache is invalidated.
    let epoch = core.ingest_tick();
    let fresh = core.query(&req).expect("post-tick query");
    println!(
        "after tick -> epoch {epoch}: same query recomputes (cache_hit={}) as {:.2}s",
        fresh.cache_hit, fresh.mean
    );
    assert_eq!(fresh.epoch, epoch);
    assert!(!fresh.cache_hit);

    let stats = core.stats();
    println!(
        "\nstats: {} queries, {} rejected, {} hits / {} misses, {} invalidated on epoch bumps",
        stats.queries,
        stats.rejected,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.invalidated
    );
}
