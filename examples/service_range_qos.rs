//! "Stochastic values could be used to specify a 'service range' as an
//! alternative to Quality of Service guarantees. Probabilities associated
//! with values in the service range could be used in instances where poor
//! performance can be tolerated a small percentage of the time."
//! (paper, Section 1.2)
//!
//! This example turns a stochastic bandwidth value into service-range
//! statements and checks them against the simulated shared ethernet.
//!
//! Run with: `cargo run -p prodpred-examples --bin service_range_qos`

use prodpred_simgrid::network::EthernetContention;
use prodpred_stochastic::{Distribution, StochasticValue};

fn main() {
    // Measure the shared segment for ~28 hours at the NWS cadence.
    let trace = EthernetContention::default().generate(17, 0.0, 5.0, 20_000);
    let mbit: Vec<f64> = trace.values().iter().map(|f| f * 10.0).collect();
    let sv = StochasticValue::from_samples(&mbit).unwrap();
    let emp = prodpred_stochastic::Empirical::new(&mbit);

    println!("measured bandwidth: {sv} Mbit/s\n");

    // A QoS guarantee would have to promise the worst case. A service
    // range promises a level *with a probability*.
    println!("service-range statements derived from the measurements:");
    for q in [0.50, 0.75, 0.90, 0.95, 0.99] {
        let level = emp.quantile(1.0 - q);
        let normal_level = sv.to_normal().quantile(1.0 - q);
        println!(
            "  >= {level:5.2} Mbit/s at least {:2.0}% of the time   (normal model: {normal_level:5.2})",
            q * 100.0
        );
    }

    // Verify one statement empirically.
    let level = emp.quantile(0.10);
    let frac = emp.fraction_within(level, f64::INFINITY);
    println!(
        "\ncheck: {:.1}% of samples meet the 90% service level of {level:.2} Mbit/s",
        frac * 100.0
    );
    println!(
        "\nThe long left tail (contention) makes the worst case far below the\n\
         typical case — a hard guarantee would waste most of the segment's\n\
         capacity, while the service range prices the risk explicitly."
    );
}
