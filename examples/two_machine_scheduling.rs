//! The paper's Section-1.2 motivating example: two machines that look
//! identical to a point-valued model (both average 12 s per unit of work)
//! but differ radically in variance — and how a variance-aware scheduler
//! exploits the difference.
//!
//! Run with: `cargo run -p prodpred-examples --bin two_machine_scheduling`

use prodpred_core::{allocate_units, planned_completion, AllocationPolicy};
use prodpred_stochastic::{Distribution, StochasticValue, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Machine A: slow but quiet (± 5%). Machine B: fast hardware, many
    // users (± 30%). In production both *average* 12 s per unit.
    let machine_a = StochasticValue::from_percent(12.0, 5.0);
    let machine_b = StochasticValue::from_percent(12.0, 30.0);
    println!("machine A unit time: {machine_a} s");
    println!("machine B unit time: {machine_b} s\n");

    let units = 120u64;
    let policies = [
        ("by mean (conventional)", AllocationPolicy::ByMean),
        (
            "risk-averse lambda=2",
            AllocationPolicy::RiskAverse { lambda: 2.0 },
        ),
        (
            "optimistic lambda=1",
            AllocationPolicy::Optimistic { lambda: 1.0 },
        ),
    ];

    // Evaluate each plan against 10 000 simulated production days.
    let mut rng = StdRng::seed_from_u64(7);
    let (na, nb) = (machine_a.to_normal(), machine_b.to_normal());
    for (label, policy) in policies {
        let alloc = allocate_units(units, &[machine_a, machine_b], policy);
        let plan = planned_completion(&alloc, &[machine_a, machine_b]);
        let mut outcomes = Summary::new();
        let mut all = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            let ta = alloc[0] as f64 * na.sample(&mut rng);
            let tb = alloc[1] as f64 * nb.sample(&mut rng);
            let t = ta.max(tb);
            outcomes.push(t);
            all.push(t);
        }
        let p95 = prodpred_stochastic::stats::quantile(&all, 0.95).unwrap();
        println!(
            "{label:24} units [A,B] = [{:>3},{:>3}]  planned {plan}",
            alloc[0], alloc[1]
        );
        println!(
            "{:24} simulated mean {:.0} s, p95 {:.0} s\n",
            "",
            outcomes.mean(),
            p95
        );
    }
    println!(
        "The conventional split is blind to machine B's spread. The\n\
         risk-averse plan sacrifices a little average time for a much\n\
         better 95th percentile; the optimistic plan does the reverse —\n\
         exactly the trade-off the paper's Section 1.2 describes."
    );
}
