//! Integration of the 2D block-decomposition extension: real solver
//! equivalence, simulator consistency, and a structural-model check built
//! from the generic message-list communication component.

use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{
    partition_blocks, partition_equal, simulate, simulate_blocks, solve_parallel_blocks,
    solve_parallel_strips, solve_seq, BlockLayout, DistSorConfig, Grid, SorParams,
};
use prodpred_stochastic::{max_of, Dependence, MaxStrategy};
use prodpred_structural::{phase_comm_messages, Param, PtToPtModel};

#[test]
fn all_three_solvers_agree_bitwise() {
    let n = 41;
    let iters = 20;
    let params = SorParams::for_grid(n, iters);
    let mut seq = Grid::laplace_problem(n);
    solve_seq(&mut seq, params);

    let mut strips = Grid::laplace_problem(n);
    solve_parallel_strips(&mut strips, params, &partition_equal(n - 2, 3));
    assert_eq!(strips.max_diff(&seq), 0.0);

    let mut blocks = Grid::laplace_problem(n);
    solve_parallel_blocks(&mut blocks, params, BlockLayout::new(3, 2));
    assert_eq!(blocks.max_diff(&seq), 0.0);
}

#[test]
fn block_structural_model_tracks_simulator_when_dedicated() {
    // Build the block analogue of the SOR structural model by hand from
    // the published component pieces and check it against the simulator,
    // the same way the paper validates the strip model (§2.2.1).
    let p = 4;
    let n = 800;
    let iterations = 20;
    let platform = Platform::dedicated(&vec![MachineClass::Sparc10; p], 1.0e6);
    let layout = BlockLayout::squarest(p);
    let blocks = partition_blocks(n, layout);

    let network = PtToPtModel {
        size_elt: 8.0,
        ded_bw: Param::point(platform.network.spec.dedicated_bw),
        bw_avail: Param::point(0.58),
        latency: platform.network.spec.latency,
        dependence: Dependence::Related,
    };
    let bm = MachineClass::Sparc10.benchmark_secs_per_element();

    let comp_terms: Vec<_> = blocks
        .iter()
        .map(|b| prodpred_stochastic::StochasticValue::point(b.elements() as f64 / 2.0 * bm))
        .collect();
    let comm_terms: Vec<_> = blocks
        .iter()
        .map(|b| {
            let (u, d, l, r) = layout.neighbours(b.coords.0, b.coords.1);
            let mut msgs = Vec::new();
            for (link, elems) in [
                (u, b.n_cols() as f64),
                (d, b.n_cols() as f64),
                (l, b.n_rows() as f64),
                (r, b.n_rows() as f64),
            ] {
                if link.is_some() {
                    msgs.push(elems); // send
                    msgs.push(elems); // receive
                }
            }
            phase_comm_messages(&network, &msgs)
        })
        .collect();

    let per_iter = max_of(&comp_terms, MaxStrategy::ByMean)
        .add(
            &max_of(&comm_terms, MaxStrategy::ByMean),
            Dependence::Related,
        )
        .scale(2.0); // red + black phases
    let predicted = per_iter.scale(iterations as f64).mean();

    let run = simulate_blocks(
        &platform,
        &blocks,
        layout,
        DistSorConfig::new(n, iterations, 0.0),
    );
    let err = (predicted - run.total_secs).abs() / run.total_secs;
    assert!(
        err < 0.02,
        "predicted {predicted}, actual {}, err {err}",
        run.total_secs
    );
}

#[test]
fn comm_advantage_grows_with_processor_count() {
    // A strip interior processor moves 4N ghost elements per phase
    // regardless of P; a center block moves 8N/sqrt(P). The ratio is
    // sqrt(P)/2 — flat at 2x through P = 16, then growing (P = 64: 4x).
    // Verify the simulated comm-bound gap follows that curve.
    let n = 402;
    let mut ratios = Vec::new();
    for p in [16usize, 64] {
        let mut platform = Platform::dedicated(&vec![MachineClass::UltraSparc; p], 1.0e4);
        platform.network.spec.dedicated_bw = 1.0e5; // very slow: comm-bound
        let cfg = DistSorConfig::new(n, 5, 0.0);
        let t_strip = simulate(&platform, &partition_equal(n - 2, p), cfg).total_secs;
        let layout = BlockLayout::squarest(p);
        let t_block =
            simulate_blocks(&platform, &partition_blocks(n, layout), layout, cfg).total_secs;
        ratios.push(t_strip / t_block);
    }
    assert!(
        ratios[1] > ratios[0] * 1.3,
        "advantage should grow from P=16 to P=64: {ratios:?}"
    );
    assert!(
        ratios[0] > 1.3,
        "16-way block should clearly win: {ratios:?}"
    );
}
