//! Chaos recovery: the supervised solver stack (checkpoint/restart +
//! bounded retry + typed errors) exercised end-to-end through the public
//! APIs, the way the `chaos_study` bench bin drives it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use prodpred_core::{
    platform2_experiment_supervised, solve_blocks_supervised, solve_strips_supervised, RetryPolicy,
};
use prodpred_pool::parallel_map;
use prodpred_simgrid::faults::{mix, FaultConfig, FaultSchedule, WorkerDeath};
use prodpred_sor::{
    partition_equal, solve_seq, BlockLayout, CheckpointPolicy, ExchangePolicy, Grid, SolveError,
    SorParams,
};

fn snappy() -> ExchangePolicy {
    ExchangePolicy {
        timeout: Duration::from_millis(200),
        retries: 1,
    }
}

#[test]
fn killed_then_resumed_strip_solve_is_bit_identical() {
    let n = 33;
    let iters = 24;
    let mut reference = Grid::laplace_problem(n);
    solve_seq(&mut reference, SorParams::for_grid(n, iters));

    let schedule = FaultSchedule {
        id: 0,
        kills: vec![WorkerDeath {
            rank: 1,
            at_half_iteration: 29,
        }],
    };
    let mut grid = Grid::laplace_problem(n);
    let recovery = solve_strips_supervised(
        &mut grid,
        SorParams::for_grid(n, iters),
        &partition_equal(n - 2, 4),
        snappy(),
        &schedule,
        &RetryPolicy::default(),
        CheckpointPolicy::every(6),
    );
    assert!(recovery.succeeded());
    assert_eq!(recovery.attempts, 2);
    assert_eq!(recovery.stats.recovered, 1);
    assert!(
        recovery.stats.resumed_iterations_saved > 0,
        "the retry must resume from a checkpoint, not iteration 0"
    );
    assert_eq!(
        grid.max_diff(&reference),
        0.0,
        "recovered solve must match the unfaulted sequential bits"
    );
}

#[test]
fn killed_then_resumed_block_solve_is_bit_identical() {
    let n = 29;
    let iters = 20;
    let mut reference = Grid::laplace_problem(n);
    solve_seq(&mut reference, SorParams::for_grid(n, iters));

    let schedule = FaultSchedule {
        id: 0,
        kills: vec![WorkerDeath {
            rank: 3,
            at_half_iteration: 17,
        }],
    };
    let mut grid = Grid::laplace_problem(n);
    let recovery = solve_blocks_supervised(
        &mut grid,
        SorParams::for_grid(n, iters),
        BlockLayout::new(2, 2),
        snappy(),
        &schedule,
        &RetryPolicy::default(),
        CheckpointPolicy::every(4),
    );
    assert!(recovery.succeeded());
    assert!(recovery.stats.resumed_iterations_saved > 0);
    assert_eq!(grid.max_diff(&reference), 0.0);
}

#[test]
fn schedule_beyond_the_retry_budget_exhausts_into_a_typed_error() {
    let n = 25;
    let iters = 16;
    // Three deaths against a one-retry budget: attempts 0 and 1 both die,
    // and the supervisor must hand back the *typed* error of the last
    // attempt rather than panicking or looping.
    let schedule = FaultSchedule {
        id: 0,
        kills: (0..3)
            .map(|k| WorkerDeath {
                rank: k % 3,
                at_half_iteration: 5 + 2 * k,
            })
            .collect(),
    };
    let retry = RetryPolicy {
        max_retries: 1,
        ..RetryPolicy::default()
    };
    let mut grid = Grid::laplace_problem(n);
    let recovery = solve_strips_supervised(
        &mut grid,
        SorParams::for_grid(n, iters),
        &partition_equal(n - 2, 3),
        snappy(),
        &schedule,
        &retry,
        CheckpointPolicy::every(4),
    );
    assert!(!recovery.succeeded());
    assert_eq!(recovery.attempts, 2);
    assert_eq!(recovery.stats.abandoned, 1);
    assert!(matches!(
        recovery.result,
        Err(SolveError::WorkerDied { .. })
    ));
}

#[test]
fn mini_campaign_is_deterministic_across_pool_widths_with_zero_panics() {
    let n = 33;
    let iters = 16;
    let ranks = 4;
    let campaign = FaultSchedule::random_campaign(99, 24, ranks, iters);
    let mut reference = Grid::laplace_problem(n);
    solve_seq(&mut reference, SorParams::for_grid(n, iters));

    let run = |threads: usize| {
        let outcomes = parallel_map(&campaign, threads, |_, schedule| {
            catch_unwind(AssertUnwindSafe(|| {
                let mut grid = Grid::laplace_problem(n);
                let recovery = solve_strips_supervised(
                    &mut grid,
                    SorParams::for_grid(n, iters),
                    &partition_equal(n - 2, ranks),
                    snappy(),
                    schedule,
                    &RetryPolicy::default(),
                    CheckpointPolicy::every(4),
                );
                if recovery.succeeded() {
                    assert_eq!(grid.max_diff(&reference), 0.0, "schedule {}", schedule.id);
                } else {
                    assert!(recovery.result.is_err(), "failure must carry a typed error");
                }
                (
                    recovery.succeeded(),
                    recovery.stats.retries,
                    grid.interior_sum().to_bits(),
                )
            }))
            .ok()
        });
        assert!(
            outcomes.iter().all(Option::is_some),
            "no schedule may panic at {threads} pool threads"
        );
        let mut digest = 0u64;
        for (schedule, o) in campaign.iter().zip(&outcomes) {
            let (ok, retries, bits) = o.expect("checked above");
            digest = mix(digest ^ schedule.id);
            digest = mix(digest ^ u64::from(ok));
            digest = mix(digest ^ retries);
            digest = mix(digest ^ bits);
        }
        digest
    };
    assert_eq!(
        run(1),
        run(4),
        "campaign digest must not depend on pool width"
    );
}

#[test]
fn supervised_experiment_rides_through_a_blackout() {
    // A blackout swallowing the NWS warmup: at the first run every
    // sensor history is still empty, so the unsupervised harness would
    // skip the run, while the supervisor's backoff walks the clock past
    // the outage and completes the series.
    let mut faults = FaultConfig::none(23);
    faults.blackouts.push((0.0, 500.0));
    let retry = RetryPolicy {
        max_retries: 4,
        base_backoff_secs: 60.0,
        jitter_fraction: 0.0,
        ..RetryPolicy::default()
    };
    let out = platform2_experiment_supervised(23, 600, 4, &faults, retry);
    assert_eq!(out.stats.skipped_runs, 0, "every run must complete");
    assert_eq!(out.series.records.len(), 4);
    assert!(
        out.recovery.retries > 0,
        "the blackout must force at least one retry"
    );
    for r in &out.series.records {
        assert!(r.actual_secs.is_finite() && r.actual_secs > 0.0);
        assert!(r.prediction.stochastic.mean().is_finite());
    }
}
