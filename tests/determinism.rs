//! Every experiment replays bit-for-bit from its seed — the property that
//! makes the figure harness reproducible.

use prodpred_core::{platform1_experiment, platform2_experiment};

#[test]
fn platform1_experiment_is_deterministic() {
    let a = platform1_experiment(5, &[1000, 1400]);
    let b = platform1_experiment(5, &[1000, 1400]);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.actual_secs, rb.actual_secs);
        assert_eq!(
            ra.prediction.stochastic.mean(),
            rb.prediction.stochastic.mean()
        );
        assert_eq!(
            ra.prediction.stochastic.half_width(),
            rb.prediction.stochastic.half_width()
        );
    }
}

#[test]
fn platform2_experiment_is_deterministic() {
    let a = platform2_experiment(9, 1000, 4);
    let b = platform2_experiment(9, 1000, 4);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.actual_secs, rb.actual_secs);
        assert_eq!(ra.start, rb.start);
    }
}

#[test]
fn different_seeds_differ() {
    let a = platform2_experiment(1, 1000, 3);
    let b = platform2_experiment(2, 1000, 3);
    assert!(
        a.records
            .iter()
            .zip(&b.records)
            .any(|(x, y)| x.actual_secs != y.actual_secs),
        "seeds produced identical experiments"
    );
}
