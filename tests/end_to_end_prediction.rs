//! End-to-end integration: platform → NWS → predictor → simulated run,
//! exercising every crate in one flow.

use prodpred_core::{decompose, DecompositionPolicy, PredictorConfig, SorPredictor};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::Platform;
use prodpred_sor::{simulate, DistSorConfig};

#[test]
fn pipeline_produces_consistent_prediction_and_run() {
    let platform = Platform::platform1(7, 20_000.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 300.0);

    let n = 1200;
    let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
    let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());
    let prediction = predictor.predict(n, &strips).expect("warmed up");

    assert!(!prediction.stochastic.is_point());
    assert!(prediction.stochastic.mean() > 0.0);
    assert!((prediction.point - prediction.stochastic.mean()).abs() < 1e-6);

    let run = simulate(
        &platform,
        &strips,
        DistSorConfig {
            paging: None,
            n,
            iterations: 50,
            start_time: 300.0,
        },
    );
    assert!(run.total_secs > 0.0);
    // Single-mode regime: the widened interval must bracket the run even
    // across seeds (the unwidened one does for almost all of them).
    assert!(
        prediction.stochastic.widen(2.0).contains(run.total_secs),
        "prediction {} vs actual {}",
        prediction.stochastic,
        run.total_secs
    );
}

#[test]
fn prediction_tracks_problem_size_scaling() {
    let platform = Platform::platform1(8, 20_000.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 300.0);
    let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());

    let p1000 = predictor
        .predict(
            1000,
            &decompose(&platform, 1000, DecompositionPolicy::DedicatedSpeed, None),
        )
        .unwrap();
    let p2000 = predictor
        .predict(
            2000,
            &decompose(&platform, 2000, DecompositionPolicy::DedicatedSpeed, None),
        )
        .unwrap();
    let ratio = p2000.stochastic.mean() / p1000.stochastic.mean();
    // Compute scales 4x; comm scales 2x; overall between 2x and 4x.
    assert!(ratio > 2.0 && ratio < 4.5, "ratio {ratio}");
}

#[test]
fn structural_model_tracks_simulator_on_dedicated_platform() {
    // The §2.2.1 claim as an integration test, on a different machine mix
    // than the harness default.
    use prodpred_core::predict_dedicated;
    use prodpred_simgrid::MachineClass;
    let platform = Platform::dedicated(
        &[
            MachineClass::UltraSparc,
            MachineClass::Sparc5,
            MachineClass::Sparc10,
        ],
        1.0e6,
    );
    let n = 900;
    let strips = decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None);
    let predicted = predict_dedicated(&platform, n, &strips, 30);
    let run = simulate(
        &platform,
        &strips,
        DistSorConfig {
            paging: None,
            n,
            iterations: 30,
            start_time: 0.0,
        },
    );
    let err = (predicted.mean() - run.total_secs).abs() / run.total_secs;
    assert!(
        err < 0.02,
        "predicted {} actual {} err {err}",
        predicted.mean(),
        run.total_secs
    );
}
