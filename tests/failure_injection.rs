//! Failure injection: the system must stay well-behaved when the
//! environment degrades — a machine effectively dies, the network
//! collapses, a worker thread is killed mid-solve, sensors black out, or
//! the NWS sees pathological histories.

use prodpred_core::{
    decompose, platform2_experiment_with_faults, DecompositionPolicy, PredictorConfig, SorPredictor,
};
use prodpred_nws::{NwsConfig, NwsService};
use prodpred_simgrid::faults::{FaultConfig, WorkerDeath};
use prodpred_simgrid::load::MIN_AVAILABILITY;
use prodpred_simgrid::{Machine, MachineClass, MachineSpec, Platform, Trace};
use prodpred_sor::{
    partition_equal, simulate, try_solve_parallel_blocks, try_solve_parallel_strips, BlockLayout,
    DistSorConfig, ExchangePolicy, Grid, SolveError, SolveOptions, SorParams,
};
use std::time::{Duration, Instant};

fn platform_with_machine1(load: Trace) -> Platform {
    let horizon = load.t_end();
    let mut machines: Vec<Machine> = (0..4)
        .map(|i| {
            Machine::new(
                MachineSpec::new(format!("m{i}"), MachineClass::Sparc10),
                Trace::constant(0.0, 1.0, 1.0, horizon as usize),
            )
        })
        .collect();
    machines[1] = Machine::new(MachineSpec::new("dying", MachineClass::Sparc10), load);
    let network = Platform::dedicated(&[MachineClass::Sparc10], 10.0).network;
    Platform {
        machines,
        network,
        horizon,
    }
}

#[test]
fn machine_death_stalls_but_never_hangs() {
    // Machine 1 drops to the availability floor one second into a run
    // that needs several seconds of compute.
    let mut values = vec![1.0; 1];
    values.extend(vec![MIN_AVAILABILITY; 100_000]);
    let platform = platform_with_machine1(Trace::new(0.0, 1.0, values));
    let strips = partition_equal(998, 4);
    let run = simulate(&platform, &strips, DistSorConfig::new(1000, 10, 0.0));
    // Terminates, with a time reflecting the ~100x slowdown of the dead
    // machine's share of the work.
    assert!(run.total_secs.is_finite());
    let clean = simulate(
        &Platform::dedicated([MachineClass::Sparc10; 4].as_ref(), 1.0e5),
        &strips,
        DistSorConfig::new(1000, 10, 0.0),
    );
    assert!(run.total_secs > clean.total_secs * 10.0);
}

#[test]
fn zero_availability_trace_uses_floor_not_divergence() {
    // A trace generated entirely at the availability floor: work still
    // completes (floored), never NaN/inf.
    let t = Trace::constant(0.0, 1.0, MIN_AVAILABILITY, 1000);
    let d = t.time_to_complete(0.0, 1.0);
    assert!(d.is_finite() && d > 0.0);
    assert!((d - 1.0 / MIN_AVAILABILITY).abs() / d < 1e-9);
}

#[test]
fn network_collapse_inflates_but_preserves_order() {
    let mut platform = Platform::dedicated([MachineClass::Sparc10; 4].as_ref(), 1.0e5);
    let strips = partition_equal(998, 4);
    let healthy = simulate(&platform, &strips, DistSorConfig::new(1000, 5, 0.0));
    // Collapse available bandwidth to 2% of dedicated.
    platform.network.avail = Trace::constant(0.0, 1.0, 0.02, 100_000);
    let degraded = simulate(&platform, &strips, DistSorConfig::new(1000, 5, 0.0));
    assert!(degraded.total_secs > healthy.total_secs * 2.0);
    assert!(degraded.total_secs.is_finite());
}

#[test]
fn predictor_survives_degraded_machine() {
    // The NWS reports the dying machine's ~floor availability; the
    // prediction must be finite, huge, and still bracket the actual run.
    let mut values = vec![0.9; 300];
    values.extend(vec![0.02; 30_000]);
    let platform = platform_with_machine1(Trace::new(0.0, 1.0, values));
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 600.0); // well into the degraded regime
    let strips = decompose(&platform, 400, DecompositionPolicy::Equal, None);
    let predictor = SorPredictor::new(&platform, &nws, PredictorConfig::default());
    let prediction = predictor.predict(400, &strips).unwrap();
    assert!(prediction.stochastic.mean().is_finite());

    let run = simulate(&platform, &strips, DistSorConfig::new(400, 50, 600.0));
    // The degraded machine dominates both prediction and reality.
    let healthy_est = 50.0 * 2.0 * (398.0 * 398.0 / 4.0 / 2.0) * 0.9e-6 / 0.9;
    assert!(run.total_secs > healthy_est * 10.0);
    assert!(
        prediction.stochastic.widen(2.0).contains(run.total_secs),
        "prediction {} vs actual {}",
        prediction.stochastic,
        run.total_secs
    );
}

/// The per-exchange patience configured below: 200 ms per attempt, one
/// retry, so a wedged neighbour costs at most 400 ms per exchange.
fn snappy() -> ExchangePolicy {
    ExchangePolicy {
        timeout: Duration::from_millis(200),
        retries: 1,
    }
}

#[test]
fn killed_strip_worker_surfaces_within_the_configured_timeout() {
    let n = 33;
    let iters = 40;
    let reference = Grid::laplace_problem(n);
    let mut g = Grid::laplace_problem(n);
    let options = SolveOptions {
        policy: snappy(),
        kill: Some(WorkerDeath {
            rank: 2,
            at_half_iteration: 11,
        }),
    };
    let strips = partition_equal(n - 2, 4);
    let started = Instant::now();
    let err = try_solve_parallel_strips(&mut g, SorParams::for_grid(n, iters), &strips, &options)
        .expect_err("a killed worker must not produce a clean solve");
    let elapsed = started.elapsed();
    assert_eq!(err, SolveError::WorkerDied { rank: 2 });
    // Death propagates by mailbox disconnection, not by timing out every
    // exchange: well under the worst-case per-exchange patience times the
    // remaining iterations, and nowhere near a deadlock.
    assert!(
        elapsed < Duration::from_secs(5),
        "took {elapsed:?} to report the death"
    );
    // The grid is left untouched so callers can retry on a clean state.
    assert_eq!(g.max_diff(&reference), 0.0);
}

#[test]
fn killed_block_worker_surfaces_within_the_configured_timeout() {
    let n = 29;
    let iters = 30;
    let layout = BlockLayout::new(3, 2);
    let reference = Grid::laplace_problem(n);
    let mut g = Grid::laplace_problem(n);
    let options = SolveOptions {
        policy: snappy(),
        kill: Some(WorkerDeath {
            rank: 4,
            at_half_iteration: 7,
        }),
    };
    let started = Instant::now();
    let err = try_solve_parallel_blocks(&mut g, SorParams::for_grid(n, iters), layout, &options)
        .expect_err("a killed worker must not produce a clean solve");
    assert_eq!(err, SolveError::WorkerDied { rank: 4 });
    assert!(started.elapsed() < Duration::from_secs(5));
    assert_eq!(g.max_diff(&reference), 0.0);
}

#[test]
fn fault_free_options_still_solve_exactly() {
    let n = 25;
    let iters = 20;
    let mut reference = Grid::laplace_problem(n);
    prodpred_sor::solve_seq(&mut reference, SorParams::for_grid(n, iters));
    let mut g = Grid::laplace_problem(n);
    let strips = partition_equal(n - 2, 3);
    try_solve_parallel_strips(
        &mut g,
        SorParams::for_grid(n, iters),
        &strips,
        &SolveOptions::reliable(),
    )
    .expect("healthy workers solve");
    assert_eq!(g.max_diff(&reference), 0.0);
}

#[test]
fn full_fault_mix_degrades_gracefully_end_to_end() {
    // Dropout + delay + spikes + corruption + a blackout + a storm, all
    // at once: the experiment still completes every run, reports finite
    // predictions, and accounts for the degradation instead of panicking.
    let faults = FaultConfig::with_intensity(17, 1.0);
    let out = platform2_experiment_with_faults(17, 1200, 6, &faults);
    assert_eq!(out.series.records.len() + out.stats.skipped_runs, 6);
    for r in &out.series.records {
        assert!(r.actual_secs.is_finite() && r.actual_secs > 0.0);
        assert!(r.prediction.stochastic.mean().is_finite());
        assert!(r.prediction.stochastic.half_width().is_finite());
    }
    assert!(
        out.stats.missed_polls > 0,
        "blackout+dropout must drop polls"
    );
    assert!(out.stats.queries > 0);
    assert!(
        out.stats.degraded_queries > 0,
        "faults this heavy must degrade"
    );
}

#[test]
fn constant_history_gives_point_like_stochastic_value() {
    // A pathologically flat history must not produce NaN spreads.
    let platform = platform_with_machine1(Trace::constant(0.0, 1.0, 0.5, 10_000));
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 5_000.0);
    let sv = nws.cpu_stochastic(1).unwrap();
    assert_eq!(sv.mean(), 0.5);
    assert!(sv.half_width() < 1e-12);
    // Horizon scaling on a constant series must also behave.
    let h = nws.cpu_stochastic_for_horizon(1, 120.0);
    if let Some(h) = h {
        assert!(h.mean().is_finite());
        assert!(h.half_width().is_finite());
    }
}
