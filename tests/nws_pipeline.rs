//! Integration of the NWS against simulated platforms: sensors see the
//! traces, forecasts track regime changes, stochastic values behave.

use prodpred_nws::{NwsConfig, NwsService, SpreadPolicy};
use prodpred_simgrid::Platform;

#[test]
fn nws_tracks_every_machine_of_both_platforms() {
    for platform in [
        Platform::platform1(3, 2000.0),
        Platform::platform2(3, 2000.0),
    ] {
        let nws = NwsService::attach(&platform, NwsConfig::default());
        nws.advance_to(&platform, 1500.0);
        for i in 0..platform.machines.len() {
            let sv = nws.cpu_stochastic(i).expect("data after advance");
            assert!(sv.mean() > 0.0 && sv.mean() <= 1.0, "machine {i}: {sv}");
            // The last measurement agrees with the underlying trace.
            let (t, v) = nws.cpu_last(i).unwrap();
            assert_eq!(v, platform.machines[i].load.at(t));
        }
    }
}

#[test]
fn spread_policies_order_by_conservatism() {
    let platform = Platform::platform2(4, 4000.0);
    let widths: Vec<f64> = [
        SpreadPolicy::ForecastRmse,
        SpreadPolicy::WindowVariance,
        SpreadPolicy::Combined,
    ]
    .into_iter()
    .map(|spread| {
        let nws = NwsService::attach(
            &platform,
            NwsConfig {
                spread,
                ..Default::default()
            },
        );
        nws.advance_to(&platform, 3000.0);
        nws.cpu_stochastic(0).unwrap().half_width()
    })
    .collect();
    // Combined >= WindowVariance and Combined >= ForecastRmse.
    assert!(widths[2] >= widths[1] - 1e-12, "{widths:?}");
    assert!(widths[2] >= widths[0] - 1e-12, "{widths:?}");
}

#[test]
fn single_mode_prediction_brackets_future_load() {
    let platform = Platform::platform1(6, 4000.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 2000.0);
    // Machine 0 sits in the 0.48 mode; its near-future mean load must sit
    // inside a modestly widened predicted range.
    let sv = nws.cpu_stochastic(0).unwrap();
    let future = platform.machines[0].load.mean_over(2000.0, 2120.0);
    assert!(
        sv.widen(3.0).contains(future),
        "predicted {sv}, future {future}"
    );
}

#[test]
fn bandwidth_fraction_stays_physical() {
    let platform = Platform::platform2(8, 3000.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 2500.0);
    let bw = nws.bandwidth_fraction_stochastic().unwrap();
    assert!(bw.mean() > 0.0 && bw.mean() < 1.0, "{bw}");
    assert!(bw.lo() > -0.2, "absurd lower bound: {bw}");
}
