//! The paper's headline quantitative shapes, asserted end-to-end:
//!
//! * §2.2.1 — dedicated structural model within 2%,
//! * §3.1 / Fig 9 — single-mode stochastic predictions cover the runs,
//!   mean-point discrepancy visible but moderate,
//! * §3.2 / Figs 12-17 — bursty-load stochastic predictions beat point
//!   predictions decisively,
//! * §2.1.1 / Fig 3 — the normal summary of long-tailed bandwidth covers
//!   less than its nominal 95%.

use prodpred_core::{dedicated_check, platform1_experiment, platform2_experiment};

#[test]
fn dedicated_within_two_percent_across_sizes() {
    for c in dedicated_check(&[800, 1200, 1600, 2000], 30) {
        assert!(c.rel_error < 0.02, "n={} err {}", c.n, c.rel_error);
    }
}

#[test]
fn platform1_figure9_shape() {
    let series = platform1_experiment(42, &[1000, 1200, 1400, 1600, 1800, 2000]);
    let acc = series.accuracy().unwrap();
    // "execution time measurements fall entirely within the stochastic
    // prediction"
    assert!(acc.coverage >= 0.8, "coverage {}", acc.coverage);
    // "maximal discrepancy between the means ... is 9.7%" — same order.
    assert!(acc.max_mean_error > 0.005, "mean error implausibly small");
    assert!(
        acc.max_mean_error < 0.25,
        "mean error too large: {}",
        acc.max_mean_error
    );
    // "The discrepancy between modeled stochastic predictions and actual
    // execution times is 0%" — range error far below mean error.
    assert!(
        acc.max_range_error < 0.05,
        "range error {}",
        acc.max_range_error
    );
}

#[test]
fn platform2_figures12_17_shape() {
    for (seed, n) in [(1600u64, 1600usize), (1000, 1000), (2000, 2000)] {
        let series = platform2_experiment(seed, n, 12);
        let acc = series.accuracy().unwrap();
        // "we capture approximately 80% of the actual execution times
        // within the range of stochastic predictions" — allow a band.
        assert!(
            acc.coverage >= 0.6,
            "n={n}: coverage {} too low",
            acc.coverage
        );
        // Stochastic range error must be far below the mean-point error
        // (paper: ~14% vs 38.6%).
        assert!(
            acc.max_range_error < 0.5 * acc.max_mean_error,
            "n={n}: range {} vs mean {}",
            acc.max_range_error,
            acc.max_mean_error
        );
        // Point predictions go badly wrong under bursts.
        assert!(
            acc.max_mean_error > 0.10,
            "n={n}: bursty mean error implausibly small: {}",
            acc.max_mean_error
        );
    }
}

#[test]
fn platform2_calibration_is_monotone_and_saturating() {
    use prodpred_stochastic::calibration_curve;
    let series = platform2_experiment(1600, 1600, 12);
    let obs: Vec<_> = series.records.iter().map(|r| r.observation()).collect();
    let curve = calibration_curve(&obs, &[0.25, 0.5, 1.0, 2.0, 4.0]);
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1, "{curve:?}");
    }
    // Quartered intervals must lose substantial coverage; 4x must cover
    // everything — the predictor is informative, not vacuous.
    assert!(curve[0].1 < curve[2].1, "{curve:?}");
    assert!(curve[4].1 > 0.95, "{curve:?}");
}

#[test]
fn long_tailed_bandwidth_undercovers_nominal() {
    use prodpred_simgrid::network::EthernetContention;
    use prodpred_stochastic::fit::normality_report;
    let trace = EthernetContention::default().generate(5, 0.0, 5.0, 30_000);
    let report = normality_report(trace.values()).unwrap();
    // Figure 3's lesson: ~91% actual coverage instead of ~95%.
    assert!(
        report.two_sigma_coverage < 0.95,
        "coverage {}",
        report.two_sigma_coverage
    );
    assert!(report.two_sigma_coverage > 0.85);
    assert!(report.skewness < -0.5, "left tail expected");
}
