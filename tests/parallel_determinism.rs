//! The parallel evaluation layer must be invisible in the numbers: at
//! any worker count — and under the `PRODPRED_THREADS` override the CI
//! determinism smoke job exercises — every parallel path produces bits
//! identical to its sequential reference. Three layers are pinned here:
//! the raw pool primitive, chunked Monte-Carlo validation, the
//! multi-seed experiment sweep, and the fault-injected study.

use prodpred_core::{
    platform2_experiment, platform2_experiment_with_faults, platform2_fault_sweep,
    platform2_seed_sweep,
};
use prodpred_pool::{derive_seed, parallel_map};
use prodpred_simgrid::faults::FaultConfig;
use prodpred_stochastic::{Dependence, StochasticValue};
use prodpred_structural::{monte_carlo_par, monte_carlo_par_reference, Component, MC_CHUNK};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn parallel_map_is_bit_identical_at_every_thread_count() {
    // Each task folds a per-index RNG stream into a float — exactly the
    // shape of a sweep task. Any schedule leak changes the bits.
    let masters: Vec<u64> = (0..57).collect();
    let task = |i: usize, &m: &u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(m, i as u64));
        let mut acc = 0.0f64;
        for _ in 0..500 {
            acc += (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        acc
    };
    let reference: Vec<u64> = masters
        .iter()
        .enumerate()
        .map(|(i, m)| task(i, m).to_bits())
        .collect();
    for threads in THREAD_COUNTS {
        let got: Vec<u64> = parallel_map(&masters, threads, task)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(got, reference, "threads={threads}");
    }
}

#[test]
fn parallel_monte_carlo_is_bit_identical_to_sequential_reference() {
    let sv = |m: f64, h: f64| Component::stochastic(StochasticValue::new(m, h));
    let tree = Component::Sum(
        vec![
            Component::Product(vec![sv(12.0, 0.6), sv(5.0, 1.0)], Dependence::Unrelated),
            Component::Quotient(
                Box::new(Component::point(1.0)),
                Box::new(sv(0.48, 0.05)),
                Dependence::Unrelated,
            ),
            sv(3.0, 0.4),
        ],
        Dependence::Unrelated,
    );
    // Span several chunks plus a ragged tail.
    let n = 2 * MC_CHUNK + 771;
    let reference = monte_carlo_par_reference(&tree, n, 13);
    for threads in THREAD_COUNTS {
        let par = monte_carlo_par(&tree, n, 13, threads);
        assert_eq!(
            par.summary.mean().to_bits(),
            reference.summary.mean().to_bits(),
            "mean, threads={threads}"
        );
        assert_eq!(
            par.summary.half_width().to_bits(),
            reference.summary.half_width().to_bits(),
            "half-width, threads={threads}"
        );
        assert_eq!(
            par.skewness.to_bits(),
            reference.skewness.to_bits(),
            "skewness, threads={threads}"
        );
        assert_eq!(
            par.closed_form_coverage.to_bits(),
            reference.closed_form_coverage.to_bits(),
            "coverage, threads={threads}"
        );
    }
}

#[test]
fn parallel_seed_sweep_is_bit_identical_to_sequential_loop() {
    let seeds = [2u64, 11, 29];
    let reference: Vec<_> = seeds
        .iter()
        .map(|&s| platform2_experiment(s, 1000, 3))
        .collect();
    for threads in THREAD_COUNTS {
        let sweep = platform2_seed_sweep(&seeds, 1000, 3, threads);
        assert_eq!(sweep.len(), reference.len(), "threads={threads}");
        for (series, expected) in sweep.iter().zip(&reference) {
            assert_eq!(series.records.len(), expected.records.len());
            for (got, want) in series.records.iter().zip(&expected.records) {
                assert_eq!(got.start.to_bits(), want.start.to_bits());
                assert_eq!(got.actual_secs.to_bits(), want.actual_secs.to_bits());
                assert_eq!(
                    got.prediction.stochastic.mean().to_bits(),
                    want.prediction.stochastic.mean().to_bits()
                );
                assert_eq!(
                    got.prediction.stochastic.half_width().to_bits(),
                    want.prediction.stochastic.half_width().to_bits()
                );
            }
            assert_eq!(series.load_samples.len(), expected.load_samples.len());
        }
    }
}

#[test]
fn fault_injected_sweep_is_bit_identical_at_every_thread_count() {
    // Fault injection must not reintroduce schedule sensitivity: every
    // per-poll fault decision is a pure function of (seed, resource,
    // poll index), so the faulted study reproduces bit-for-bit at any
    // pool width — same records, same degradation accounting.
    let seeds = [5u64, 19];
    let intensities = [0.0, 0.5, 1.0];
    let reference: Vec<_> = intensities
        .iter()
        .flat_map(|&intensity| {
            seeds.iter().map(move |&seed| {
                let faults = FaultConfig::with_intensity(seed, intensity);
                platform2_experiment_with_faults(seed, 1000, 3, &faults)
            })
        })
        .collect();
    let reference_rows = platform2_fault_sweep(&seeds, 1000, 3, &intensities, 1);
    for threads in THREAD_COUNTS {
        let rows = platform2_fault_sweep(&seeds, 1000, 3, &intensities, threads);
        assert_eq!(rows.len(), reference_rows.len(), "threads={threads}");
        for (got, want) in rows.iter().zip(&reference_rows) {
            assert_eq!(
                got.mean_abs_error.to_bits(),
                want.mean_abs_error.to_bits(),
                "threads={threads}"
            );
            assert_eq!(got.mean_coverage.to_bits(), want.mean_coverage.to_bits());
            assert_eq!(
                got.max_stale_intervals.to_bits(),
                want.max_stale_intervals.to_bits()
            );
            assert_eq!(got.missed_polls, want.missed_polls);
            assert_eq!(got.corrupt_polls, want.corrupt_polls);
            assert_eq!(got.skipped_runs, want.skipped_runs);
            assert_eq!(got.runs, want.runs);
        }
    }
    // And the sequential per-cell replay agrees with the sweep's inputs:
    // the same (seed, intensity) cell run standalone produces the same
    // degradation counters the aggregate rows were built from.
    let totals: (u64, u64) = reference.iter().fold((0, 0), |(m, c), f| {
        (m + f.stats.missed_polls, c + f.stats.corrupt_polls)
    });
    let row_totals: (u64, u64) = reference_rows.iter().fold((0, 0), |(m, c), r| {
        (m + r.missed_polls, c + r.corrupt_polls)
    });
    assert_eq!(totals, row_totals);
}
