//! Scheduling integration: variance-aware allocation measurably improves
//! tail completion times on the simulated platforms.

use prodpred_core::{allocate_units, decompose, AllocationPolicy, DecompositionPolicy};
use prodpred_simgrid::{MachineClass, Platform};
use prodpred_sor::{simulate, DistSorConfig};
use prodpred_stochastic::{Distribution, StochasticValue};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn risk_averse_beats_by_mean_on_p95_completion() {
    // Table-1 machines; Monte-Carlo over production days.
    let times = [
        StochasticValue::from_percent(12.0, 5.0),
        StochasticValue::from_percent(12.0, 30.0),
    ];
    let mean_alloc = allocate_units(100, &times, AllocationPolicy::ByMean);
    let risk_alloc = allocate_units(100, &times, AllocationPolicy::RiskAverse { lambda: 2.0 });

    let mut rng = StdRng::seed_from_u64(11);
    let normals = [times[0].to_normal(), times[1].to_normal()];
    let completion = |alloc: &[u64], rng: &mut StdRng| -> Vec<f64> {
        (0..8000)
            .map(|_| {
                let a = alloc[0] as f64 * normals[0].sample(rng);
                let b = alloc[1] as f64 * normals[1].sample(rng);
                a.max(b)
            })
            .collect()
    };
    let mean_runs = completion(&mean_alloc, &mut rng);
    let risk_runs = completion(&risk_alloc, &mut rng);
    let p95 = |v: &[f64]| prodpred_stochastic::stats::quantile(v, 0.95).unwrap();
    assert!(
        p95(&risk_runs) < p95(&mean_runs),
        "risk-averse p95 {} should beat by-mean p95 {}",
        p95(&risk_runs),
        p95(&mean_runs)
    );
}

#[test]
fn speed_weighted_decomposition_beats_equal_on_heterogeneous_platform() {
    let platform = Platform::dedicated(
        &[
            MachineClass::Sparc2,
            MachineClass::Sparc5,
            MachineClass::UltraSparc,
            MachineClass::UltraSparc,
        ],
        1.0e6,
    );
    let n = 1000;
    let cfg = |_: usize| DistSorConfig {
        paging: None,
        n,
        iterations: 20,
        start_time: 0.0,
    };
    let equal = simulate(
        &platform,
        &decompose(&platform, n, DecompositionPolicy::Equal, None),
        cfg(0),
    );
    let weighted = simulate(
        &platform,
        &decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None),
        cfg(1),
    );
    assert!(
        weighted.total_secs < equal.total_secs * 0.7,
        "weighted {} vs equal {}",
        weighted.total_secs,
        equal.total_secs
    );
}

#[test]
fn effective_speed_decomposition_adapts_to_load() {
    // Two identical machines, one heavily loaded: the load-aware split
    // beats the load-blind one.
    use prodpred_simgrid::{Machine, MachineSpec, Trace};
    let horizon = 1.0e6;
    let quiet = Machine::new(
        MachineSpec::new("quiet", MachineClass::Sparc10),
        Trace::constant(0.0, 1.0, 0.95, horizon as usize),
    );
    let busy = Machine::new(
        MachineSpec::new("busy", MachineClass::Sparc10),
        Trace::constant(0.0, 1.0, 0.30, horizon as usize),
    );
    let network = Platform::dedicated(&[MachineClass::Sparc10], 10.0).network;
    let platform = Platform {
        machines: vec![quiet, busy],
        network,
        horizon,
    };
    let n = 800;
    let loads = [
        StochasticValue::new(0.95, 0.02),
        StochasticValue::new(0.30, 0.02),
    ];
    let blind = simulate(
        &platform,
        &decompose(&platform, n, DecompositionPolicy::DedicatedSpeed, None),
        DistSorConfig {
            paging: None,
            n,
            iterations: 20,
            start_time: 0.0,
        },
    );
    let aware = simulate(
        &platform,
        &decompose(
            &platform,
            n,
            DecompositionPolicy::EffectiveSpeed {
                policy: AllocationPolicy::ByMean,
            },
            Some(&loads),
        ),
        DistSorConfig {
            paging: None,
            n,
            iterations: 20,
            start_time: 0.0,
        },
    );
    assert!(
        aware.total_secs < blind.total_secs * 0.75,
        "aware {} vs blind {}",
        aware.total_secs,
        blind.total_secs
    );
}
