//! Serde round-trips: experiment artifacts persist and reload intact, so
//! traces and results can be archived and replotted.

use prodpred_core::{platform2_experiment, ExperimentSeries};
use prodpred_nws::snapshot::ForecastSnapshot;
use prodpred_nws::{NwsConfig, NwsService, QuerySummary};
use prodpred_simgrid::{Platform, Trace};
use prodpred_stochastic::StochasticValue;

#[test]
fn stochastic_value_round_trip() {
    let v = StochasticValue::new(12.0, 0.6);
    let json = serde_json::to_string(&v).unwrap();
    let back: StochasticValue = serde_json::from_str(&json).unwrap();
    assert_eq!(v, back);
}

#[test]
fn trace_round_trip() {
    let t = Trace::new(3.0, 0.5, vec![0.1, 0.9, 0.4]);
    let json = serde_json::to_string(&t).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(t, back);
    assert_eq!(back.at(3.6), 0.9);
}

#[test]
fn platform_round_trip_preserves_behaviour() {
    let p = Platform::platform1(5, 600.0);
    let json = serde_json::to_string(&p).unwrap();
    let back: Platform = serde_json::from_str(&json).unwrap();
    assert_eq!(p.len(), back.len());
    for (a, b) in p.machines.iter().zip(&back.machines) {
        assert_eq!(a.spec.name, b.spec.name);
        assert_eq!(a.load, b.load);
    }
    assert_eq!(p.network.avail, back.network.avail);
    // Behavioural check: transfers agree.
    assert_eq!(
        p.network.transfer_secs(1.0e5, 100.0),
        back.network.transfer_secs(1.0e5, 100.0)
    );
}

#[test]
fn query_summary_round_trip() {
    let platform = Platform::platform2(11, 900.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 600.0);
    let summary: QuerySummary = nws.cpu_query(0).unwrap();
    let json = serde_json::to_string(&summary).unwrap();
    let back: QuerySummary = serde_json::from_str(&json).unwrap();
    assert_eq!(summary, back);
    assert_eq!(summary.value.mean().to_bits(), back.value.mean().to_bits());
}

#[test]
fn forecast_snapshot_round_trip_preserves_answers() {
    let platform = Platform::platform2(11, 900.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 600.0);
    let snapshot = nws.snapshot(3);
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: ForecastSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snapshot, back);
    // The reloaded snapshot answers queries bit-identically, including
    // the horizon-scaled OU arithmetic.
    for i in 0..snapshot.n_machines() {
        for horizon in [1.0, 60.0, 900.0] {
            let a = snapshot.cpu_stochastic_for_horizon(i, horizon);
            let b = back.cpu_stochastic_for_horizon(i, horizon);
            assert_eq!(a.map(|v| v.mean().to_bits()), b.map(|v| v.mean().to_bits()));
        }
    }
}

#[test]
fn predict_response_round_trip() {
    use prodpred_service::{PredictResponse, ServiceConfig, ServiceCore};
    let core = ServiceCore::new(ServiceConfig {
        seed: 11,
        horizon: 1200.0,
        warmup: 300.0,
        ..ServiceConfig::default()
    });
    let response = core.query(&prodpred_service::request_for(11, 0)).unwrap();
    let json = serde_json::to_string(&response).unwrap();
    let back: PredictResponse = serde_json::from_str(&json).unwrap();
    assert_eq!(response, back);
    assert_eq!(response.mean.to_bits(), back.mean.to_bits());
}

#[test]
fn replay_report_round_trip() {
    use prodpred_service::ReplayReport;
    let report = ReplayReport {
        seed: 42,
        requests: 20_000,
        threads: 4,
        ticks: 10,
        elapsed_us: 123_456,
        qps: 162_004.5,
        p50_us: 1,
        p99_us: 9,
        max_us: 1_500,
        cache_hit_rate: 0.9,
        errors: 0,
    };
    let json = serde_json::to_string(&report).unwrap();
    let back: ReplayReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn serving_state_round_trip() {
    use prodpred_service::ServingState;
    for state in [
        ServingState::Healthy,
        ServingState::Degraded,
        ServingState::Stale,
        ServingState::Unavailable,
    ] {
        let json = serde_json::to_string(&state).unwrap();
        let back: ServingState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
    }
    // Severity ordering survives independent round-trips.
    let lo: ServingState = serde_json::from_str("\"Healthy\"").unwrap();
    let hi: ServingState = serde_json::from_str("\"Unavailable\"").unwrap();
    assert!(lo < hi);
}

#[test]
fn degraded_predict_response_round_trip() {
    use prodpred_core::supervisor::RetryPolicy;
    use prodpred_service::{
        PredictResponse, ResilienceConfig, ServiceConfig, ServiceCore, ServingState,
    };
    use prodpred_simgrid::faults::FaultConfig;
    // Sensors black out right after warmup; with retries/escalation off
    // the snapshot just ages, so the answer leaves marked degraded with
    // a widened interval — all of which must survive the wire.
    let mut fault = FaultConfig::none(11);
    fault.blackouts.push((300.0, f64::MAX));
    let core = ServiceCore::new(ServiceConfig {
        seed: 11,
        horizon: 1.0e7,
        warmup: 300.0,
        fault: Some(fault),
        resilience: ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker_threshold: u32::MAX,
            watchdog_ticks: u64::MAX,
            stale_age_ticks: u64::MAX,
            ..ResilienceConfig::default()
        },
        ..ServiceConfig::default()
    });
    core.ingest_tick();
    core.ingest_tick();
    let response = core.query(&prodpred_service::request_for(11, 0)).unwrap();
    assert!(response.degraded, "blackout run must degrade the answer");
    assert_eq!(response.serving, ServingState::Degraded);
    assert_eq!(response.snapshot_age_ticks, 2);
    let json = serde_json::to_string(&response).unwrap();
    let back: PredictResponse = serde_json::from_str(&json).unwrap();
    assert_eq!(response, back);
    assert_eq!(response.lo.to_bits(), back.lo.to_bits());
    assert_eq!(response.hi.to_bits(), back.hi.to_bits());
}

#[test]
fn chaos_report_round_trip() {
    use prodpred_service::{ChaosArm, ChaosReport};
    let arm = |shift: u64| ChaosArm {
        requests: 20_000,
        ok: 18_340 - shift,
        degraded: 350 + shift,
        shed: 1_560,
        unavailable: 100 + shift,
        availability: 0.995,
        degraded_fraction: 0.019,
        shed_rate: 0.078,
        p99_us: 9,
        epochs_published: 390,
        ingest_failures: 8 + shift,
        ingest_retries: 42,
        breaker_trips: 2,
        watchdog_trips: 2,
    };
    let report = ChaosReport {
        seed: 42,
        ticks: 400,
        queries_per_tick: 50,
        soundness_checked_configs: 192,
        supervised: arm(0),
        unsupervised: arm(6_000),
        predicted_availability: 0.995,
        availability_error: 0.0,
    };
    let json = serde_json::to_string(&report).unwrap();
    let back: ChaosReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    assert_eq!(
        report.predicted_availability.to_bits(),
        back.predicted_availability.to_bits()
    );
    // The committed artifact (pretty-printed) parses with the same type.
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    let from_pretty: ChaosReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(report, from_pretty);
}

#[test]
fn fault_config_round_trip() {
    use prodpred_simgrid::faults::FaultConfig;
    for intensity in [0.0, 0.3, 1.0] {
        let cfg = FaultConfig::with_intensity(9, intensity);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back, "intensity {intensity} mangled by round-trip");
    }
}

#[test]
fn degradation_stats_round_trip() {
    use prodpred_core::DegradationStats;
    let stats = DegradationStats {
        queries: 480,
        degraded_queries: 37,
        max_stale_intervals: 6.5,
        skipped_runs: 2,
        missed_polls: 91,
        corrupt_polls: 14,
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: DegradationStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
}

#[test]
fn recovery_stats_round_trip() {
    use prodpred_core::RecoveryStats;
    let stats = RecoveryStats {
        retries: 219,
        backoff_secs: 10_743.25,
        recovered: 158,
        abandoned: 1,
        resumed_iterations_saved: 1948,
        checkpoints_taken: 652,
        breaker_trips: 3,
        breaker_short_circuits: 11,
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: RecoveryStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
    // The float survives bit-exactly, not just approximately.
    assert_eq!(stats.backoff_secs.to_bits(), back.backoff_secs.to_bits());
}

#[test]
fn degradation_terms_round_trip() {
    use prodpred_structural::DegradationTerms;
    let terms = DegradationTerms {
        slowdown: 1.173_25,
        delay_secs: 96.0625,
        widening: 1.089_1,
    };
    let json = serde_json::to_string(&terms).unwrap();
    let back: DegradationTerms = serde_json::from_str(&json).unwrap();
    assert_eq!(terms, back);
    let none_json = serde_json::to_string(&DegradationTerms::none()).unwrap();
    let none_back: DegradationTerms = serde_json::from_str(&none_json).unwrap();
    assert!(none_back.is_none(), "identity terms must survive the wire");
}

#[test]
fn campaign_prediction_round_trip() {
    use prodpred_core::{predict_campaign, CampaignPrediction, RetryPolicy};
    use prodpred_sor::CheckpointPolicy;
    let predicted = predict_campaign(1.0, &RetryPolicy::default(), CheckpointPolicy::every(4), 20);
    let json = serde_json::to_string(&predicted).unwrap();
    let back: CampaignPrediction = serde_json::from_str(&json).unwrap();
    assert_eq!(predicted, back);
    assert_eq!(
        predicted.mean_backoff_secs.to_bits(),
        back.mean_backoff_secs.to_bits()
    );
}

#[test]
fn experiment_series_round_trip() {
    let series = platform2_experiment(3, 800, 3);
    let json = serde_json::to_string(&series).unwrap();
    let back: ExperimentSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(series.records.len(), back.records.len());
    for (a, b) in series.records.iter().zip(&back.records) {
        assert_eq!(a.actual_secs, b.actual_secs);
        assert_eq!(
            a.prediction.stochastic.mean(),
            b.prediction.stochastic.mean()
        );
        assert_eq!(
            a.prediction.stochastic.half_width(),
            b.prediction.stochastic.half_width()
        );
    }
    // Accuracy recomputes identically from the reloaded artifact.
    let acc_a = series.accuracy().unwrap();
    let acc_b = back.accuracy().unwrap();
    assert_eq!(acc_a.coverage, acc_b.coverage);
    assert_eq!(acc_a.max_range_error, acc_b.max_range_error);
}
