//! Serde round-trips: experiment artifacts persist and reload intact, so
//! traces and results can be archived and replotted.

use prodpred_core::{platform2_experiment, ExperimentSeries};
use prodpred_simgrid::{Platform, Trace};
use prodpred_stochastic::StochasticValue;

#[test]
fn stochastic_value_round_trip() {
    let v = StochasticValue::new(12.0, 0.6);
    let json = serde_json::to_string(&v).unwrap();
    let back: StochasticValue = serde_json::from_str(&json).unwrap();
    assert_eq!(v, back);
}

#[test]
fn trace_round_trip() {
    let t = Trace::new(3.0, 0.5, vec![0.1, 0.9, 0.4]);
    let json = serde_json::to_string(&t).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(t, back);
    assert_eq!(back.at(3.6), 0.9);
}

#[test]
fn platform_round_trip_preserves_behaviour() {
    let p = Platform::platform1(5, 600.0);
    let json = serde_json::to_string(&p).unwrap();
    let back: Platform = serde_json::from_str(&json).unwrap();
    assert_eq!(p.len(), back.len());
    for (a, b) in p.machines.iter().zip(&back.machines) {
        assert_eq!(a.spec.name, b.spec.name);
        assert_eq!(a.load, b.load);
    }
    assert_eq!(p.network.avail, back.network.avail);
    // Behavioural check: transfers agree.
    assert_eq!(
        p.network.transfer_secs(1.0e5, 100.0),
        back.network.transfer_secs(1.0e5, 100.0)
    );
}

#[test]
fn experiment_series_round_trip() {
    let series = platform2_experiment(3, 800, 3);
    let json = serde_json::to_string(&series).unwrap();
    let back: ExperimentSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(series.records.len(), back.records.len());
    for (a, b) in series.records.iter().zip(&back.records) {
        assert_eq!(a.actual_secs, b.actual_secs);
        assert_eq!(
            a.prediction.stochastic.mean(),
            b.prediction.stochastic.mean()
        );
        assert_eq!(
            a.prediction.stochastic.half_width(),
            b.prediction.stochastic.half_width()
        );
    }
    // Accuracy recomputes identically from the reloaded artifact.
    let acc_a = series.accuracy().unwrap();
    let acc_b = back.accuracy().unwrap();
    assert_eq!(acc_a.coverage, acc_b.coverage);
    assert_eq!(acc_a.max_range_error, acc_b.max_range_error);
}
