//! Tier-1 coverage of the prediction service, end to end, with zero
//! real I/O: epoch publication, cache invalidation and eviction,
//! concurrent reader storms pinned bit-identical to the uncached path,
//! and the full HTTP routing surface driven through the socket-free
//! [`prodpred_service::handle`] layer.

use prodpred_service::{
    handle, request_for, request_path, CacheConfig, PredictResponse, ServiceConfig, ServiceCore,
};
use std::sync::Arc;

const SEED: u64 = 17;

fn small_config() -> ServiceConfig {
    ServiceConfig {
        seed: SEED,
        horizon: 2400.0,
        warmup: 300.0,
        publish_interval: 5.0,
        ..ServiceConfig::default()
    }
}

fn bits(r: &PredictResponse) -> (u64, u64, u64, u64, u64) {
    (
        r.mean.to_bits(),
        r.lo.to_bits(),
        r.hi.to_bits(),
        r.point.to_bits(),
        r.epoch,
    )
}

#[test]
fn epoch_bump_invalidates_every_stale_entry() {
    let core = ServiceCore::new(small_config());
    // Populate the cache with a spread of distinct configurations.
    for i in 0..64 {
        core.query(&request_for(SEED, i)).unwrap();
    }
    let populated = core.stats();
    assert!(populated.cache.entries > 10, "cache never populated");

    let epoch = core.ingest_tick();
    let after = core.stats();
    assert_eq!(after.cache.entries, 0, "stale entries survived the bump");
    assert_eq!(
        after.cache.invalidated, populated.cache.entries,
        "invalidation count must equal the dropped population"
    );

    // Re-issuing the same stream: every distinct configuration must miss
    // once (no stale entry can answer), then duplicates hit the freshly
    // repopulated epoch — so the hit/miss structure of the first pass
    // repeats exactly.
    for i in 0..64 {
        let r = core.query(&request_for(SEED, i)).unwrap();
        assert_eq!(r.epoch, epoch);
    }
    let refreshed = core.stats();
    assert_eq!(
        refreshed.cache.hits,
        2 * populated.cache.hits,
        "a post-bump query hit a stale entry"
    );
    assert_eq!(refreshed.cache.misses, 2 * populated.cache.misses);
    assert_eq!(refreshed.cache.entries, populated.cache.entries);
}

#[test]
fn bounded_eviction_is_deterministic_across_runs() {
    let tiny = ServiceConfig {
        cache: CacheConfig {
            capacity: 16,
            shards: 4,
        },
        ..small_config()
    };
    let run = || {
        let core = ServiceCore::new(tiny.clone());
        let mut responses = Vec::new();
        for i in 0..400 {
            responses.push(bits(&core.query(&request_for(SEED, i)).unwrap()));
        }
        let s = core.stats();
        (
            responses,
            s.cache.hits,
            s.cache.misses,
            s.cache.evicted,
            s.cache.entries,
        )
    };
    let (answers_a, hits_a, misses_a, evicted_a, entries_a) = run();
    let (answers_b, hits_b, misses_b, evicted_b, entries_b) = run();
    assert!(
        evicted_a > 0,
        "a 16-entry cache must evict under 400 queries"
    );
    // The core holds one 16-entry cache per hosted platform.
    assert!(entries_a <= 32);
    assert_eq!(answers_a, answers_b, "answers depend on eviction history");
    assert_eq!(
        (hits_a, misses_a, evicted_a, entries_a),
        (hits_b, misses_b, evicted_b, entries_b),
        "cache dynamics are not deterministic"
    );
}

#[test]
fn eviction_never_changes_answers() {
    // Same query stream against an unbounded and a tiny cache: identical
    // answers, bit for bit — eviction only costs recomputation.
    let roomy = ServiceCore::new(small_config());
    let tiny = ServiceCore::new(ServiceConfig {
        cache: CacheConfig {
            capacity: 8,
            shards: 2,
        },
        ..small_config()
    });
    for i in 0..300 {
        let req = request_for(SEED, i);
        assert_eq!(
            bits(&roomy.query(&req).unwrap()),
            bits(&tiny.query(&req).unwrap()),
            "request {i} diverged under eviction pressure"
        );
    }
    assert!(tiny.stats().cache.evicted > 0);
}

/// The acceptance pin: a storm of concurrent readers, at every pool
/// width, produces answers bit-identical to the single-threaded
/// uncached reference path.
#[test]
fn reader_storm_is_bit_identical_to_uncached_at_every_width() {
    const REQUESTS: u64 = 240;

    // Reference: fresh core, cache bypassed entirely.
    let reference_core = ServiceCore::new(small_config());
    let reference: Vec<_> = (0..REQUESTS)
        .map(|i| {
            bits(
                &reference_core
                    .query_uncached(&request_for(SEED, i))
                    .unwrap(),
            )
        })
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let core = Arc::new(ServiceCore::new(small_config()));
        let mut answers = vec![None; REQUESTS as usize];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let core = Arc::clone(&core);
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        let mut i = t as u64;
                        while i < REQUESTS {
                            let r = core.query(&request_for(SEED, i)).unwrap();
                            mine.push((i as usize, bits(&r)));
                            i += threads as u64;
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, b) in h.join().unwrap() {
                    answers[i] = Some(b);
                }
            }
        });
        let answers: Vec<_> = answers.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            answers, reference,
            "{threads}-thread storm diverged from the uncached reference"
        );
        let s = core.stats();
        assert!(
            s.cache.hits > 0,
            "{threads}-thread storm never hit the cache"
        );
        assert_eq!(s.cache.hits + s.cache.misses, REQUESTS);
    }
}

/// Fault-aware twin of the reader-storm pin: degraded queries, at every
/// pool width and a spread of intensities, stay bit-identical to the
/// single-threaded uncached reference — the degradation terms are pure,
/// so the cache soundness argument carries over unchanged.
#[test]
fn faulted_reader_storm_is_bit_identical_to_uncached() {
    const REQUESTS: u64 = 120;
    const INTENSITIES: [f64; 3] = [0.0, 0.4, 1.0];

    let faulted = |i: u64| {
        let mut req = request_for(SEED, i);
        req.fault_intensity = Some(INTENSITIES[(i % INTENSITIES.len() as u64) as usize]);
        req
    };

    let reference_core = ServiceCore::new(small_config());
    let reference: Vec<_> = (0..REQUESTS)
        .map(|i| bits(&reference_core.query_uncached(&faulted(i)).unwrap()))
        .collect();

    for threads in [1usize, 4] {
        let core = Arc::new(ServiceCore::new(small_config()));
        let mut answers = vec![None; REQUESTS as usize];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let core = Arc::clone(&core);
                    let faulted = &faulted;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        let mut i = t as u64;
                        while i < REQUESTS {
                            let r = core.query(&faulted(i)).unwrap();
                            mine.push((i as usize, bits(&r)));
                            i += threads as u64;
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, b) in h.join().unwrap() {
                    answers[i] = Some(b);
                }
            }
        });
        let answers: Vec<_> = answers.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            answers, reference,
            "{threads}-thread faulted storm diverged from the uncached reference"
        );
        let s = core.stats();
        assert!(s.cache.hits > 0, "faulted storm never hit the cache");
    }
}

#[test]
fn readers_survive_a_concurrent_ingest_writer() {
    // Queries racing epoch bumps: every answer must be Ok, carry an
    // epoch that was actually published, and be internally coherent.
    let core = Arc::new(ServiceCore::new(small_config()));
    let first_epoch = core.epoch();
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let core = Arc::clone(&core);
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for i in 0..200u64 {
                        let r = core.query(&request_for(SEED + t, i)).unwrap();
                        assert!(r.epoch >= first_epoch);
                        assert!(r.epoch >= last_epoch, "epoch went backwards");
                        assert!(r.lo <= r.mean && r.mean <= r.hi);
                        last_epoch = r.epoch;
                    }
                    last_epoch
                })
            })
            .collect();
        let writer = {
            let core = Arc::clone(&core);
            scope.spawn(move || {
                for _ in 0..40 {
                    core.ingest_tick();
                    std::thread::yield_now();
                }
            })
        };
        writer.join().unwrap();
        for r in readers {
            let last = r.join().unwrap();
            assert!(last <= core.epoch());
        }
    });
    assert_eq!(core.epoch(), first_epoch + 40);
    assert_eq!(core.stats().rejected, 0);
}

#[test]
fn http_surface_end_to_end_without_sockets() {
    let core = ServiceCore::new(small_config());

    let health = handle(&core, "/health");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"epoch\":1"), "{}", health.body);

    // The exact replay paths the bench and CI smoke put on the wire.
    for i in 0..50 {
        let path = request_path(SEED, i);
        let response = handle(&core, &path);
        assert_eq!(response.status, 200, "{path} -> {}", response.body);
        let parsed: PredictResponse = serde_json::from_str(&response.body).unwrap();
        let direct = core.query(&request_for(SEED, i)).unwrap();
        assert_eq!(
            parsed.mean.to_bits(),
            direct.mean.to_bits(),
            "HTTP answer diverges from the core for {path}"
        );
    }

    let metrics = handle(&core, "/metrics");
    assert_eq!(metrics.status, 200);
    let stats: prodpred_service::ServiceStats = serde_json::from_str(&metrics.body).unwrap();
    assert!(stats.queries >= 100);
    assert!(stats.cache.hits > 0);

    // The wire rendering carries the body it says it does.
    let wire = handle(&core, "/health").render();
    let body = wire.split("\r\n\r\n").nth(1).unwrap();
    let advertised: usize = wire
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(advertised, body.len());

    assert_eq!(
        handle(&core, "/predict?platform=9&n=600&procs=2").status,
        404
    );
    assert_eq!(handle(&core, "/predict?platform=1&n=2&procs=2").status, 400);
    assert_eq!(handle(&core, "/missing").status, 404);

    // The fault surface over HTTP: bad intensities become typed 400s
    // (never a panic in the daemon), valid ones degrade the answer.
    for bad in ["NaN", "inf", "-0.5", "2"] {
        let target = format!("/predict?platform=2&n=1600&procs=4&fault_intensity={bad}");
        assert_eq!(handle(&core, &target).status, 400, "fault_intensity={bad}");
    }
    let healthy: PredictResponse =
        serde_json::from_str(&handle(&core, "/predict?platform=2&n=1600&procs=4").body).unwrap();
    let degraded: PredictResponse = serde_json::from_str(
        &handle(
            &core,
            "/predict?platform=2&n=1600&procs=4&fault_intensity=0.8",
        )
        .body,
    )
    .unwrap();
    assert_eq!(degraded.fault_intensity, Some(0.8));
    assert!(degraded.mean > healthy.mean);
    assert!(degraded.hi - degraded.lo > healthy.hi - healthy.lo);
}

#[test]
fn snapshot_answers_match_live_service_at_capture_time() {
    // The frozen snapshot feeding the service must reproduce the live
    // predictor bit-for-bit at the instant of capture — the property
    // that makes serving from a snapshot sound.
    use prodpred_core::{PredictorConfig, SorPredictor};
    use prodpred_nws::{NwsConfig, NwsService};
    use prodpred_simgrid::Platform;
    use prodpred_sor::decomp::partition_equal;

    let platform = Platform::platform2(SEED, 1500.0);
    let nws = NwsService::attach(&platform, NwsConfig::default());
    nws.advance_to(&platform, 900.0);
    let snapshot = nws.snapshot(1);

    for n in [400usize, 1000, 1600] {
        let strips = partition_equal(n - 2, 4);
        let config = PredictorConfig::default();
        let live = SorPredictor::try_new(&platform, &nws, config)
            .unwrap()
            .try_predict(n, &strips)
            .unwrap();
        let frozen = SorPredictor::try_new(&platform, &snapshot, config)
            .unwrap()
            .try_predict(n, &strips)
            .unwrap();
        assert_eq!(
            live.stochastic.mean().to_bits(),
            frozen.stochastic.mean().to_bits()
        );
        assert_eq!(
            live.stochastic.half_width().to_bits(),
            frozen.stochastic.half_width().to_bits()
        );
        assert_eq!(live.point.to_bits(), frozen.point.to_bits());
    }
}

/// Integration cross-check of the chaos methodology: the availability
/// DP and a real supervised core, run over the same fault schedule,
/// must agree tick for tick on ingest outcomes. The schedule includes a
/// long outage so the retry budget, watchdog, breaker cooldown, and
/// half-open probe all participate.
#[test]
fn availability_prediction_matches_a_supervised_core_tick_for_tick() {
    use prodpred_service::{predict_availability, ResilienceConfig, ServingState};
    use prodpred_simgrid::faults::FaultConfig;

    let warmup = 600.0;
    let ticks = 60u64;
    let mut fault = FaultConfig::none(SEED);
    fault.blackouts.push((650.0, 3000.0));
    let resilience = ResilienceConfig::default();

    let predicted = predict_availability(&fault, &resilience, 5.0, 5.0, warmup, 20_000.0, ticks);

    let core = ServiceCore::new(ServiceConfig {
        seed: SEED,
        horizon: 20_000.0,
        warmup,
        fault: Some(fault),
        resilience,
        ..ServiceConfig::default()
    });
    let mut unavailable_ticks = 0u64;
    for _ in 0..ticks {
        core.ingest_tick();
        if core.serving(1).unwrap() == ServingState::Unavailable {
            unavailable_ticks += 1;
        }
    }
    let stats = core.stats();

    // Ingest stats merge both platforms; the DP models one. The +1 on
    // publishes is the warmup tick, which the DP accounts separately.
    assert_eq!(stats.ingest.publishes, 2 * (predicted.published_ticks + 1));
    assert_eq!(stats.ingest.failures, 2 * predicted.failed_ticks);
    assert_eq!(
        stats.ingest.breaker_short_circuits,
        2 * predicted.short_circuited_ticks
    );
    assert_eq!(unavailable_ticks, predicted.unavailable_ticks);
    // The outage is long enough that every stage fired at least once.
    assert!(predicted.failed_ticks > 0, "{predicted:?}");
    assert!(predicted.short_circuited_ticks > 0, "{predicted:?}");
    assert!(stats.ingest.watchdog_trips > 0, "{stats:?}");
    // And the measured per-tick availability equals the DP's.
    let measured = 1.0 - unavailable_ticks as f64 / ticks as f64;
    assert_eq!(measured.to_bits(), predicted.availability.to_bits());
}
