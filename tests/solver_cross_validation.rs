//! Numerical cross-validation of the three SOR executions: sequential,
//! real multithreaded, and the performance model's element accounting.

use prodpred_sor::{
    optimal_omega, partition_equal, partition_rows, solve_parallel_strips, solve_seq, Grid,
    SorParams,
};

#[test]
fn parallel_equals_sequential_across_sizes_and_widths() {
    for n in [17, 40, 65] {
        for p in [2, 4, 5] {
            let params = SorParams::for_grid(n, 25);
            let mut seq = Grid::laplace_problem(n);
            solve_seq(&mut seq, params);
            let mut par = Grid::laplace_problem(n);
            solve_parallel_strips(&mut par, params, &partition_equal(n - 2, p));
            assert_eq!(par.max_diff(&seq), 0.0, "n={n}, p={p}");
        }
    }
}

#[test]
fn heterogeneous_weighted_strips_preserve_numerics() {
    let n = 41;
    let params = SorParams::for_grid(n, 30);
    let mut seq = Grid::laplace_problem(n);
    solve_seq(&mut seq, params);
    // Weights mimicking Platform 1's machine speeds.
    let strips = partition_rows(n - 2, &[0.5, 0.5, 0.77, 1.11]);
    let mut par = Grid::laplace_problem(n);
    solve_parallel_strips(&mut par, params, &strips);
    assert_eq!(par.max_diff(&seq), 0.0);
}

#[test]
fn converged_solution_satisfies_discrete_laplace() {
    let n = 33;
    let mut g = Grid::laplace_problem(n);
    solve_parallel_strips(
        &mut g,
        SorParams {
            omega: optimal_omega(n),
            iterations: 600,
        },
        &partition_equal(n - 2, 4),
    );
    assert!(g.max_residual() < 1e-10);
    // Boundary intact.
    assert_eq!(g.get(0, n / 2), 1.0);
    assert_eq!(g.get(n - 1, n / 2), 0.0);
}

#[test]
fn strip_elements_match_grid_interior() {
    let n = 1000;
    for p in [1, 3, 4, 7] {
        let strips = partition_equal(n - 2, p);
        let total: usize = strips.iter().map(|s| s.elements(n)).sum();
        assert_eq!(total, (n - 2) * (n - 2), "p={p}");
    }
}
