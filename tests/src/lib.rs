//! Cross-crate integration test support. The tests themselves live in the
//! package root (see `Cargo.toml` `[[test]]` entries).
