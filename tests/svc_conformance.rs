//! Conformance between the serving-path model (`prodpred_analysis::svc`)
//! and the real `EpochSwap`/`EpochCache`/`Admission`.
//!
//! The model checker proves the invariants over *model* semantics; these
//! tests close the loop by replaying explored schedules step-for-step
//! against the real types through their instrumentation seams
//! (`begin_publish`/`commit`, `try_load_at`, `bump_word`/`sweep_shard`,
//! `take_token`/`enter_inflight`/`exit_inflight`), asserting the
//! implementation observes exactly what the model predicts at every
//! micro-step. A proptest drives random walks through the model's
//! enabled transitions so the replayed schedules are not limited to the
//! deterministic harvest.

use prodpred_analysis::mc::TransitionSystem;
use prodpred_analysis::svc::{self, Action, ServingHarness, Svc, SvcConfig};
use prodpred_core::PredictorConfig;
use prodpred_service::cache::{CacheConfig, EpochCache, QueryKey};
use prodpred_service::resilience::{Admission, AdmissionConfig};
use prodpred_service::swap::{EpochSwap, PendingPublish};

/// The real serving stack wired up as a model harness: one
/// `EpochSwap<u64>` (values are their epoch, matching the model's
/// value-is-provenance abstraction), one `EpochCache<u64>` with one
/// pre-located key per shard, and one `Admission` gauge.
struct RealHarness<'a> {
    swap: &'a EpochSwap<u64>,
    pending: Option<PendingPublish<'a, u64>>,
    cache: EpochCache<u64>,
    keys: Vec<QueryKey>,
    admission: Admission,
}

/// Finds one query key per shard by scanning the deterministic
/// fingerprint routing.
fn keys_per_shard(cache: &EpochCache<u64>) -> Vec<QueryKey> {
    let shards = cache.shard_count();
    let mut keys: Vec<Option<QueryKey>> = vec![None; shards];
    let mut found = 0;
    for n in 0.. {
        let key = QueryKey::new(1, n, 4, &PredictorConfig::default(), None);
        let shard = cache.shard_index(&key);
        if keys[shard].is_none() {
            keys[shard] = Some(key);
            found += 1;
            if found == shards {
                break;
            }
        }
    }
    keys.into_iter()
        .map(|k| k.expect("every shard keyed"))
        .collect()
}

impl<'a> RealHarness<'a> {
    fn new(swap: &'a EpochSwap<u64>, config: SvcConfig) -> Self {
        let cache = EpochCache::new(CacheConfig {
            capacity: 64,
            shards: config.shards,
        });
        let keys = keys_per_shard(&cache);
        let to_u64 = |v: u8| {
            if v == svc::UNBOUNDED {
                u64::MAX
            } else {
                u64::from(v)
            }
        };
        let admission = Admission::new(AdmissionConfig {
            max_inflight_misses: to_u64(config.max_inflight),
            miss_tokens_per_tick: to_u64(config.tokens),
        });
        RealHarness {
            swap,
            pending: None,
            cache,
            keys,
            admission,
        }
    }
}

impl ServingHarness for RealHarness<'_> {
    fn write_slot_tag(&mut self, epoch: u64) {
        // The real writer fills the whole slot (tag + value) under the
        // writer lock in `begin_publish`; the model's separate tag/value
        // steps both map onto this one write, which is sound because no
        // correct-variant reader can observe the half-written window
        // (the epoch word still names the previous epoch).
        let pending = self.swap.begin_publish(epoch);
        assert_eq!(pending.epoch(), epoch, "publication epoch agrees");
        self.pending = Some(pending);
    }

    fn write_slot_val(&mut self, _epoch: u64) {
        // Already written by `begin_publish`; see `write_slot_tag`.
    }

    fn publish_epoch(&mut self, epoch: u64) {
        let pending = self.pending.take().expect("publish follows the slot write");
        assert_eq!(pending.commit(), epoch);
        self.admission.refill();
    }

    fn load_epoch(&mut self) -> u64 {
        self.swap.epoch()
    }

    fn read_slot(&mut self, epoch: u64) -> Option<u64> {
        self.swap.try_load_at(epoch).map(|v| *v)
    }

    fn probe(&mut self, shard: usize, epoch: u64) -> Option<u64> {
        self.cache.get(epoch, &self.keys[shard]).map(|v| *v)
    }

    fn take_token(&mut self) -> bool {
        self.admission.take_token()
    }

    fn enter_inflight(&mut self) -> bool {
        self.admission.enter_inflight()
    }

    fn rollback_inflight(&mut self) {
        self.admission.exit_inflight();
    }

    fn insert(&mut self, shard: usize, epoch: u64) {
        self.cache.insert(epoch, self.keys[shard], epoch);
    }

    fn release_permit(&mut self) {
        self.admission.exit_inflight();
    }

    fn bump_word(&mut self, epoch: u64) -> bool {
        self.cache.bump_word(epoch)
    }

    fn sweep_shard(&mut self, shard: usize, epoch: u64) {
        self.cache.sweep_shard(shard, epoch);
    }
}

/// Replays every harvested schedule of `config` against a fresh real
/// stack.
fn replay_all(config: SvcConfig, limit: usize) {
    let schedules = svc::schedules(config, limit);
    assert!(!schedules.is_empty(), "harvest must produce schedules");
    for (i, schedule) in schedules.iter().enumerate() {
        let swap: EpochSwap<u64> = EpochSwap::new();
        let mut harness = RealHarness::new(&swap, config);
        svc::replay(config, schedule, &mut harness)
            .unwrap_or_else(|e| panic!("schedule {i} diverged: {e}"));
    }
}

#[test]
fn explored_schedules_replay_on_the_real_stack() {
    replay_all(SvcConfig::new(2, 2, 2), 300);
}

#[test]
fn admission_pressure_schedules_replay_on_the_real_stack() {
    replay_all(SvcConfig::new(2, 1, 2).with_admission(1, 1), 300);
}

#[test]
fn ring_lapping_schedules_replay_on_the_real_stack() {
    replay_all(SvcConfig::new(2, 1, 3), 300);
}

#[test]
fn three_reader_schedules_replay_on_the_real_stack() {
    replay_all(SvcConfig::new(3, 2, 2), 200);
}

mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    /// Drives the model by a random choice sequence: at each state pick
    /// one of the enabled transitions. Returns the realized schedule
    /// (possibly partial — stops at quiescence or when choices run dry).
    fn random_walk(config: SvcConfig, choices: &[usize]) -> Vec<Action> {
        let sys = Svc::new(config);
        let mut state = sys.initial();
        let mut schedule = Vec::new();
        for &c in choices {
            let enabled = sys.enabled(&state);
            if enabled.is_empty() {
                break;
            }
            let action = enabled[c % enabled.len()];
            state = sys.apply(&state, action).expect("correct variant holds");
            schedule.push(action);
        }
        schedule
    }

    proptest! {
        // Any schedule the model can produce, replayed on the real
        // cache/swap/admission, never serves a cross-epoch value and
        // never disagrees with the model: `replay` asserts every hit's
        // value equals the serving epoch's entry, and the model itself
        // errors on a cross-epoch hit.
        #[test]
        fn random_walks_replay_without_cross_epoch_hits(
            choices in proptest::collection::vec(0usize..16, 1..160),
        ) {
            let config = SvcConfig::new(2, 2, 2);
            let schedule = random_walk(config, &choices);
            let swap: EpochSwap<u64> = EpochSwap::new();
            let mut harness = RealHarness::new(&swap, config);
            prop_assert!(svc::replay(config, &schedule, &mut harness).is_ok());
        }

        // Same property under admission pressure, where the shed and
        // rollback paths are reachable.
        #[test]
        fn pressured_walks_replay_without_divergence(
            choices in proptest::collection::vec(0usize..16, 1..160),
        ) {
            let config = SvcConfig::new(2, 2, 2).with_admission(1, 1);
            let schedule = random_walk(config, &choices);
            let swap: EpochSwap<u64> = EpochSwap::new();
            let mut harness = RealHarness::new(&swap, config);
            prop_assert!(svc::replay(config, &schedule, &mut harness).is_ok());
        }
    }
}
