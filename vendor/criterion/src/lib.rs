//! Offline vendored stand-in for `criterion`.
//!
//! The build container cannot fetch the real crate, so this implements the
//! subset the workspace's benches use: `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `bench_with_input` and `throughput`, `BenchmarkId`, and `black_box`.
//!
//! Measurement protocol: calibrate the per-sample iteration count until a
//! sample takes ≥ 5 ms, warm up, then report the median over a fixed
//! number of samples (plus min/max), and derived throughput when
//! configured. No plots, no saved baselines — output goes to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(5);
const WARMUP: Duration = Duration::from_millis(150);
const SAMPLES: usize = 15;

/// The benchmark harness handle passed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) {
        run_benchmark(name, None, routine);
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Expected work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) {
        let name = format!("{}/{}", self.name, id.label());
        run_benchmark(&name, self.throughput, |b| routine(b, input));
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.throughput, routine);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name, parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for this sample's iteration count, timing the whole
    /// batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn sample<F: FnMut(&mut Bencher)>(routine: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibrate: grow the batch until one sample is long enough to time.
    let mut iters: u64 = 1;
    loop {
        let t = sample(&mut routine, iters);
        if t >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        // Aim directly at the target once we have a usable estimate.
        iters = if t.is_zero() {
            iters * 8
        } else {
            let scale = TARGET_SAMPLE.as_secs_f64() / t.as_secs_f64();
            (iters as f64 * scale.clamp(1.5, 8.0)).ceil() as u64
        };
    }

    // Warm up.
    let warmup_start = Instant::now();
    while warmup_start.elapsed() < WARMUP {
        sample(&mut routine, iters);
    }

    // Measure.
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| sample(&mut routine, iters).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];

    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:.3} Melem/s",
                n as f64 / median / 1.0e6
            ));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / median / (1024.0 * 1024.0)
            ));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1.0e-3 {
        format!("{:.3} ms", secs * 1.0e3)
    } else if secs >= 1.0e-6 {
        format!("{:.3} µs", secs * 1.0e6)
    } else {
        format!("{:.1} ns", secs * 1.0e9)
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::from_parameter(512).label(), "512");
        assert_eq!(BenchmarkId::new("sweep", 512).label(), "sweep/512");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
