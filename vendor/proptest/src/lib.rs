//! Offline vendored stand-in for `proptest`.
//!
//! The build container cannot fetch the real crate, so this implements the
//! subset the workspace's property tests use: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, range/tuple/`prop_map`
//! strategies, `proptest::collection::vec`, `any::<bool>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and the deterministic per-test seed instead), and inputs
//! are drawn uniformly rather than with proptest's bias toward edge
//! cases.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without failing the test.
    Reject,
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
}

/// The deterministic RNG driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn uniform01(&mut self) -> f64 {
        const SCALE: f64 = 1.110_223_024_625_156_5e-16; // 2^-53
        (self.next_u64() >> 11) as f64 * SCALE
    }
}

/// A per-test deterministic RNG, seeded from the test's name so every run
/// (and every failure report) is reproducible.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng(StdRng::seed_from_u64(h))
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform01()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `any::<bool>()`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths a [`vec`] strategy may produce.
    pub trait IntoSizeRange {
        /// The inclusive-exclusive `(lo, hi)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Generates `Vec`s with lengths drawn from `size` and elements from
    /// `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty size range");
        VecStrategy { elem, lo, hi }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.lo..self.hi).sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions over random inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0.0f64..1e3, b in 0.0f64..1e3) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property `{}` failed at case {} (deterministic per-name seed): {}",
                            stringify!($name),
                            __case,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 2.5f64..7.5, n in 3usize..9, s in 1u64..100) {
            prop_assert!((2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..100).contains(&s));
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_prop_map(p in (1.0f64..2.0, 10.0f64..20.0).prop_map(|(a, b)| a + b)) {
            prop_assert!(p > 11.0 && p < 22.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_bool_hits_both(_x in 0usize..2) {
            // Draw a handful of coins; over 64 cases both sides appear.
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
        let mut c = crate::test_rng("other");
        assert_ne!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut c));
    }

    #[test]
    fn any_bool_is_fair_enough() {
        let mut rng = crate::test_rng("coin");
        let mut heads = 0;
        for _ in 0..10_000 {
            if any::<bool>().sample(&mut rng) {
                heads += 1;
            }
        }
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.03, "{heads}");
    }
}
