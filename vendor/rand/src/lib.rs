//! Offline vendored stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so the real `rand` cannot be fetched. This crate
//! implements exactly the subset the workspace uses — [`RngCore`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — with a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), which is
//! fine: the workspace only relies on determinism-per-seed and statistical
//! quality, never on a specific stream.

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded internally so
    /// nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    ///
    /// Small, fast, passes BigCrush; entirely adequate for the simulator's
    /// reproducible Monte-Carlo draws.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step — the recommended seeder for xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_bits_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0u32;
        let n = 10_000;
        for _ in 0..n {
            ones += rng.next_u64().count_ones();
        }
        let frac = ones as f64 / (64.0 * n as f64);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_and_mut_ref() {
        let mut rng = StdRng::seed_from_u64(5);
        fn draw(r: &mut dyn RngCore) -> u64 {
            r.next_u64()
        }
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
