//! Offline vendored stand-in for `serde`.
//!
//! The build container has no network access, so the real `serde` cannot
//! be fetched. This crate keeps the workspace's *surface* syntax intact —
//! `use serde::{Serialize, Deserialize}` plus `#[derive(Serialize,
//! Deserialize)]` — over a much simpler data model: serialization goes
//! through an owned [`Value`] tree rather than serde's visitor machinery.
//! `serde_json` (also vendored) renders and parses that tree.
//!
//! Supported shapes are exactly what the workspace serializes: structs
//! with named fields, enums with unit and struct variants, numbers,
//! strings, booleans, `Option`, `Vec`, tuples, and `Range`.

use std::fmt;
use std::ops::Range;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact: `u64` seeds must round-trip).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a map value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric coercion to `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
            ref other => Err(Error::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) if x <= i64::MAX as u64 => Ok(x as i64),
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Ok(x as i64),
            ref other => Err(Error::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating shape and numeric ranges.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_f64()? as $t)
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$( stringify!($n) ),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected {}-tuple, found array of {}",
                                expected,
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize> Serialize for Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}
impl<T: Deserialize> Deserialize for Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(T::from_value(v.field("start")?)?..T::from_value(v.field("end")?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-9i32).to_value()).unwrap(), -9);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u64::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert!(u64::from_value(&Value::F64(4.5)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn compound_round_trip() {
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let r = 3usize..9;
        assert_eq!(Range::<usize>::from_value(&r.to_value()).unwrap(), r);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Some(2.0).to_value()).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn field_lookup_errors() {
        let m = Value::Map(vec![("a".to_string(), Value::U64(1))]);
        assert!(m.field("a").is_ok());
        assert!(m.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
