//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The real `serde_derive` (and its `syn` dependency) cannot be fetched in
//! this container, so this macro hand-parses the item token stream. It
//! supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields,
//! * enums whose variants are unit or struct-like (named fields).
//!
//! Generics, tuple structs, tuple variants, and `#[serde(...)]` attributes
//! are rejected with a compile-time panic — none occur in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!("let mut __m = ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m)")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "Self::{n} => ::serde::Value::Str(\"{n}\".to_string()),",
                        n = v.name
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__f.push((\"{f}\".to_string(), \
                                     ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "Self::{n} {{ {binds} }} => {{ \
                             let mut __f = ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Map(vec![(\"{n}\".to_string(), \
                             ::serde::Value::Map(__f))]) }},",
                            n = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-tree model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?,"))
                .collect();
            format!("Ok(Self {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{n}\" => Ok(Self::{n}),", n = v.name))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!("\"{n}\" => Ok(Self::{n} {{ {inits} }}),", n = v.name)
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 __other => Err(::serde::Error::new(format!( \
                 \"unknown variant `{{__other}}` of {name}\"))) }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__k, __inner) = &__entries[0]; \
                 match __k.as_str() {{ \
                 {struct_arms} \
                 __other => Err(::serde::Error::new(format!( \
                 \"unknown variant `{{__other}}` of {name}\"))) }} }}, \
                 __other => Err(::serde::Error::new(format!( \
                 \"expected variant of {name}, found {{}}\", __other.kind()))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields.
    Struct(Vec<String>),
    /// Variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive: `{name}` must have a braced body (no tuple/unit items)"),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and a
/// possible `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` with doc comments and visibility, splitting on
/// commas at angle-bracket depth 0 (types like `Vec<(f64, f64)>` keep
/// their inner commas inside token groups or angle brackets).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parses enum variants: unit (`Name`) or struct-like (`Name { ... }`).
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple variant `{name}` is not supported")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
