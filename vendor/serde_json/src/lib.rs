//! Offline vendored stand-in for `serde_json`, rendering and parsing the
//! vendored `serde` [`Value`] tree.
//!
//! Floats are written with Rust's shortest-round-trip `Display`, so every
//! finite `f64` survives `to_string` → `from_str` exactly (the behaviour
//! the real crate's `float_roundtrip` feature guarantees).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (rendering, parsing, or shape mismatch).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.i)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            // `f64::to_string` is the shortest exact-roundtrip form, but
            // prints integral values (including -0) without a decimal
            // point; append one so the reader sees a float and the sign
            // of -0.0 survives.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.i, self.s[self.i] as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid token at byte {}", self.i)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.i - 1;
                    let rest = std::str::from_utf8(&self.s[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("invalid value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<i64>().is_ok() {
                    return Ok(Value::I64(text.parse().unwrap()));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 2.0e-6, f64::MIN_POSITIVE, -0.0, 1e300] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn big_u64_round_trips() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, "18446744073709551615");
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-3.0]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.5, -4.25)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(f64, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tüñíçødé \\ end".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<bool>("tru").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
